//! Exhaustive crash-consistency checker: enumerate every WAL prefix a
//! crash could leave behind and prove Forward Recovery (§5.1) completes.
//!
//! # What is enumerated
//!
//! A scripted, single-threaded workload (inserts/deletes plus the pass-1/2/3
//! reorganization passes) runs against a [`JournalDisk`], which stamps every
//! completed page write with the WAL durability watermark at the moment of
//! the write. Because the engine issues page writes synchronously and only
//! after forcing the log up to the page's LSN, the valid crash states are
//! exactly the pairs
//!
//! > (journal prefix `j`, record prefix `k`)  with  `mark(j) <= k <= mark(j+1)`
//!
//! — the disk as of some write boundary, combined with any log length the
//! watermark passed through before the next write. That includes every
//! record boundary (group-commit watermark jumps contribute the
//! intermediate `k` values with the disk held fixed) and every
//! point in the careful-writing write order of §5.1.
//!
//! For each state the checker materializes a fresh disk from the journal,
//! clones the exact log prefix, runs the real [`recover`] path, and asserts
//! the **Forward Recovery contract**:
//!
//! - recovery itself succeeds (no state is unrecoverable),
//! - every interrupted reorganization unit is driven forward to its END —
//!   never rolled back past logged progress,
//! - the recovered tree passes fsck, and the WAL linter finds no errors,
//! - the key set equals the *oracle*: the last committed logical snapshot
//!   at or below the crash point (losers undone, nothing lost, nothing
//!   duplicated),
//! - when pass 3 was in flight, the reported restart state resumes to a
//!   successful switch, side-file catch-up converges, and the switched
//!   tree again passes fsck and matches the oracle (root switch is
//!   all-or-nothing).
//!
//! Torn tails are covered separately: sampled byte-level truncations of the
//! log image are written to a scratch file and reopened through
//! [`LogManager::open_file`], asserting the file path resolves every torn
//! tail to the record boundary below it — which the boundary enumeration
//! already verified.
//!
//! # Segmented-WAL coverage
//!
//! A third scenario runs its workload against a real file-backed
//! *segmented* log ([`LogManager::open_dir`]) with a small seal threshold,
//! recycling sealed segments before journaling begins and sealing at least
//! one more inside the journaled window — so every enumerated crash state
//! of that scenario straddles seal and recycle boundaries. On top of the
//! state enumeration, a file-level pass mutates copies of the segment
//! directory into each crash artifact the layout permits (a torn active
//! tail, an empty next segment left by a crash mid-seal, a partial oldest-
//! first recycle) and each corruption it must reject (a missing middle
//! segment, a torn *sealed* segment), asserting [`LogManager::open_dir`]
//! resolves the former to the exact record boundary and refuses the
//! latter.
//!
//! # The oracle
//!
//! The workload is single-threaded and every session operation forces the
//! log through its commit LSN, so the logical contents at any record prefix
//! `k` are the model snapshot taken right after the last operation whose
//! commit LSN is `<= k`. Reorganization never changes logical contents, so
//! the same oracle applies inside reorganization passes.
//!
//! Exhaustive mode visits every state; `budget`/`seed` deterministically
//! sample a fixed-size subset for CI.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use obr_btree::SidePointerMode;
use obr_core::{
    recover, Database, EngineConfig, FailPoint, FailSite, RecoveryReport, ReorgConfig, Reorganizer,
};
use obr_storage::{DiskManager, DurabilityWitness, InMemoryDisk, JournalDisk, Lsn};
use obr_txn::Session;
use obr_wal::{segment, LogManager, LogReader};

use crate::fsck::{fsck_db, FsckOptions};
use crate::report::Report;
use crate::wal_lint::{lint_log, WalLintOptions};

/// Name this checker stamps on findings.
const CHECKER: &str = "crashcheck";

/// Options for [`run_crash_check`].
#[derive(Clone, Debug)]
pub struct CrashCheckOptions {
    /// Maximum number of crash states to verify; `None` = exhaustive.
    pub budget: Option<usize>,
    /// Seed for deterministic budget sampling (ignored in exhaustive mode
    /// except for torn-tail cut selection).
    pub seed: u64,
    /// Byte-level torn-tail truncations to verify per scenario.
    pub torn_tail_samples: usize,
    /// Directory for torn-tail scratch files; defaults to a per-process
    /// directory under the system temp dir.
    pub scratch_dir: Option<PathBuf>,
    /// Seal threshold for the segmented-WAL scenario, in bytes. Small
    /// enough by default that the scripted workload recycles segments
    /// before journaling and seals at least one more inside the journaled
    /// window.
    pub segment_bytes: u64,
}

impl Default for CrashCheckOptions {
    fn default() -> Self {
        CrashCheckOptions {
            budget: None,
            seed: 1,
            torn_tail_samples: 48,
            scratch_dir: None,
            segment_bytes: 1024,
        }
    }
}

/// Counters describing what the enumeration covered.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrashCheckStats {
    /// Scripted workloads enumerated.
    pub scenarios: usize,
    /// WAL record boundaries across all scenarios.
    pub record_boundaries: u64,
    /// Total enumerable (disk prefix, log prefix) crash states.
    pub crash_states: u64,
    /// Crash states actually verified (== `crash_states` when exhaustive).
    pub states_checked: u64,
    /// Byte-level torn-tail truncations verified through the file path.
    pub torn_tails_checked: u64,
    /// Reorganization units recovery completed forward, summed over states.
    pub forward_units_completed: u64,
    /// States where recovery reported pass-3 in flight and the checker
    /// resumed it to a successful switch.
    pub pass3_resumes: u64,
    /// Side-file entries recovery restored, summed over states.
    pub side_entries_restored: u64,
    /// File-level segment-directory crash artifacts verified through
    /// [`LogManager::open_dir`] (torn active tails, mid-seal crashes,
    /// partial recycles, and the corruptions it must reject).
    pub segment_states_checked: u64,
}

/// The outcome of a crash-consistency run: findings plus coverage counters.
#[derive(Debug)]
pub struct CrashCheckOutcome {
    /// Findings; any [`crate::Severity::Error`] finding is a violated
    /// Forward Recovery contract.
    pub report: Report,
    /// Coverage counters.
    pub stats: CrashCheckStats,
}

/// One scripted workload, journaled and ready for enumeration.
struct Scenario {
    name: &'static str,
    journal: Arc<JournalDisk>,
    /// The workload's full log (prefixes are cloned per state).
    log: Arc<LogManager>,
    /// Reorg configuration the workload used (resume must match it).
    cfg: ReorgConfig,
    /// Durable watermark when journaling began.
    base_mark: Lsn,
    /// Durable watermark at workload end.
    end_mark: Lsn,
    /// `(commit LSN, logical snapshot)` in commit order; the first entry is
    /// the state at `base_mark`.
    oracle: Vec<(u64, BTreeMap<u64, Vec<u8>>)>,
    /// Pool frames to reopen crashed states with.
    frames: usize,
    /// Segment directory of a file-backed segmented log (the segmented-WAL
    /// scenario); `None` for in-memory-log scenarios.
    wal_dir: Option<PathBuf>,
}

/// One enumerable crash state of one scenario.
#[derive(Clone, Copy, Debug)]
struct CrashState {
    scenario: usize,
    /// Journal prefix length (disk state).
    disk_prefix: usize,
    /// Log record prefix (highest LSN the crash preserved).
    log_prefix: u64,
}

fn val(k: u64) -> Vec<u8> {
    let mut v = k.to_le_bytes().to_vec();
    v.resize(48, 0x5b);
    v
}

/// xorshift64*: tiny deterministic PRNG for sampling (no clock, no OS rng).
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Prng {
        Prng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Run the crash-consistency checker over the bundled scripted workloads.
pub fn run_crash_check(opts: &CrashCheckOptions) -> CrashCheckOutcome {
    let mut report = Report::new();
    let mut stats = CrashCheckStats::default();

    let scenarios = match build_scenarios(opts) {
        Ok(s) => s,
        Err(e) => {
            report.error(
                CHECKER,
                "workload-failed",
                None,
                None,
                format!("scripted workload failed before enumeration: {e}"),
            );
            return CrashCheckOutcome { report, stats };
        }
    };
    stats.scenarios = scenarios.len();

    // --- Enumerate every crash state of every scenario. ---
    let mut states: Vec<CrashState> = Vec::new();
    for (idx, sc) in scenarios.iter().enumerate() {
        stats.record_boundaries += sc.end_mark.0 - sc.base_mark.0 + 1;
        states.extend(enumerate_states(idx, sc));
    }
    stats.crash_states = states.len() as u64;

    // --- Budget sampling: deterministic for a fixed (budget, seed). ---
    if let Some(budget) = opts.budget {
        if budget < states.len() {
            let mut rng = Prng::new(opts.seed);
            // Partial Fisher-Yates: the first `budget` slots are a uniform
            // sample of the full state list.
            for i in 0..budget {
                let j = i + rng.below(states.len() - i);
                states.swap(i, j);
            }
            states.truncate(budget);
            states.sort_by_key(|s| (s.scenario, s.disk_prefix, s.log_prefix));
            report.note(format!(
                "budget sampling: verifying {} of {} crash states (seed {})",
                states.len(),
                stats.crash_states,
                opts.seed
            ));
        }
    }

    // --- Verify each state against the Forward Recovery contract. ---
    // A panic inside recovery or a tree walk on a corrupt state is itself a
    // violation, not a checker crash: catch it and report the state.
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for st in &states {
        let sc = &scenarios[st.scenario];
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            verify_state(sc, *st, &mut report, &mut stats)
        }));
        if let Err(p) = outcome {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "opaque panic payload".into());
            report.error(
                CHECKER,
                "panic-during-verification",
                None,
                Some(Lsn(st.log_prefix)),
                format!("{} verification panicked: {msg}", ctx(sc, *st)),
            );
        }
        stats.states_checked += 1;
    }
    std::panic::set_hook(quiet);

    // --- Torn tails through the real file path. ---
    let scratch = opts.scratch_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("obr-crashcheck-{}", std::process::id()))
    });
    for sc in &scenarios {
        verify_torn_tails(sc, opts, &scratch, &mut report, &mut stats);
    }

    // --- Segment-directory crash artifacts through the real reopen path. ---
    for sc in &scenarios {
        verify_segment_states(sc, opts, &scratch, &mut report, &mut stats);
    }
    std::fs::remove_dir_all(&scratch).ok();
    for sc in &scenarios {
        if let Some(dir) = sc.wal_dir.as_ref().and_then(|d| d.parent()) {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    for sc in &scenarios {
        report.note(format!(
            "scenario {}: journal {} events, log LSNs {}..={}, {} oracle snapshots",
            sc.name,
            sc.journal.journal_len(),
            sc.base_mark,
            sc.end_mark,
            sc.oracle.len()
        ));
    }
    report.note(format!(
        "verified {}/{} crash states, {} torn tails, {} segment states; \
         {} forward unit completions, {} pass-3 resumes, {} side entries restored",
        stats.states_checked,
        stats.crash_states,
        stats.torn_tails_checked,
        stats.segment_states_checked,
        stats.forward_units_completed,
        stats.pass3_resumes,
        stats.side_entries_restored
    ));

    CrashCheckOutcome { report, stats }
}

/// Build the scripted workloads. Each returns with its journal holding the
/// complete write history and its oracle the committed snapshots.
fn build_scenarios(opts: &CrashCheckOptions) -> Result<Vec<Scenario>, Box<dyn std::error::Error>> {
    Ok(vec![
        scenario_full_reorg()?,
        scenario_pass3_interrupted()?,
        scenario_segmented_wal(opts)?,
    ])
}

/// Common setup: a sparse bulk-loaded tree over a journaling disk, with the
/// journal started right after a checkpoint made the base state durable.
type Setup = (Arc<JournalDisk>, Arc<Database>, BTreeMap<u64, Vec<u8>>);

fn setup(
    pages: u32,
    keys: u64,
    key_stride: u64,
    fill: f64,
    node_fill: f64,
) -> Result<Setup, Box<dyn std::error::Error>> {
    let inner = Arc::new(InMemoryDisk::new(pages));
    let journal = Arc::new(JournalDisk::new(inner as Arc<dyn DiskManager>));
    let db = Database::create(
        Arc::clone(&journal) as Arc<dyn DiskManager>,
        pages as usize,
        SidePointerMode::TwoWay,
    )?;
    journal.set_witness(Arc::clone(db.log()) as Arc<dyn DurabilityWitness>);
    let records: Vec<(u64, Vec<u8>)> = (0..keys).map(|k| (k * key_stride, val(k))).collect();
    db.tree().bulk_load(&records, fill, node_fill)?;
    db.checkpoint()?;
    db.pool().flush_all()?;
    db.log().flush_all()?;
    journal.begin_journal()?;
    let model: BTreeMap<u64, Vec<u8>> = records.into_iter().collect();
    Ok((journal, db, model))
}

/// Apply one session op, mirror it in the model, and snapshot the oracle at
/// the op's commit LSN (the op forced the log through it).
fn op_insert(
    s: &Session,
    model: &mut BTreeMap<u64, Vec<u8>>,
    oracle: &mut Vec<(u64, BTreeMap<u64, Vec<u8>>)>,
    key: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    if model.contains_key(&key) {
        return Ok(());
    }
    let v = val(key ^ 0xBEEF);
    s.insert(key, &v)?;
    model.insert(key, v);
    oracle.push((s.db().log().durable_lsn().0, model.clone()));
    Ok(())
}

fn op_delete(
    s: &Session,
    model: &mut BTreeMap<u64, Vec<u8>>,
    oracle: &mut Vec<(u64, BTreeMap<u64, Vec<u8>>)>,
    key: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    if model.remove(&key).is_none() {
        return Ok(());
    }
    s.delete(key)?;
    oracle.push((s.db().log().durable_lsn().0, model.clone()));
    Ok(())
}

/// Scenario 1: session churn, then a complete pass-1/2/3 reorganization,
/// then more churn. Covers unit crashes in every pass, the pass-3 stable
/// records, the switch record, and post-switch operation.
fn scenario_full_reorg() -> Result<Scenario, Box<dyn std::error::Error>> {
    let (journal, db, mut model) = setup(2048, 320, 3, 0.3, 0.5)?;
    let base_mark = db.log().durable_lsn();
    let mut oracle = vec![(base_mark.0, model.clone())];

    let s = Session::new(Arc::clone(&db));
    // Clustered inserts split a leaf; spread inserts and deletes churn the
    // fill factors pass 1 will compact.
    for k in 0..14u64 {
        // Dense non-resident keys between the stride-3 bulk keys: 91, 92,
        // 94, 95, ... — enough in one key range to split a leaf.
        op_insert(&s, &mut model, &mut oracle, 90 + (k / 2) * 3 + 1 + k % 2)?;
    }
    for k in 0..10u64 {
        op_insert(&s, &mut model, &mut oracle, k * 93 + 1)?;
    }
    for k in 0..12u64 {
        op_delete(&s, &mut model, &mut oracle, k * 27)?;
    }

    let cfg = ReorgConfig {
        stable_interval: 3,
        ..ReorgConfig::default()
    };
    Reorganizer::new(Arc::clone(&db), cfg.clone()).run()?;

    for k in 0..8u64 {
        op_insert(&s, &mut model, &mut oracle, 600 + k)?;
    }
    for k in 0..4u64 {
        op_delete(&s, &mut model, &mut oracle, 90 + k)?;
    }

    db.pool().flush_all()?;
    db.log().flush_all()?;
    let end_mark = db.log().durable_lsn();
    Ok(Scenario {
        name: "full-reorg",
        journal,
        log: Arc::clone(db.log()),
        cfg,
        base_mark,
        end_mark,
        oracle,
        frames: 2048,
        wal_dir: None,
    })
}

/// Scenario 2: pass 3 is interrupted right after a stable point (the
/// observer and CK frontier stay live), then session operations behind the
/// frontier populate the side file — leaf splits and a free-at-empty run.
/// Every trailing crash state recovers with pass 3 in flight, and the
/// checker resumes it through side-file catch-up to the switch.
fn scenario_pass3_interrupted() -> Result<Scenario, Box<dyn std::error::Error>> {
    let (journal, db, mut model) = setup(2048, 600, 2, 0.25, 0.05)?;
    let base_mark = db.log().durable_lsn();
    let mut oracle = vec![(base_mark.0, model.clone())];

    let cfg = ReorgConfig {
        swap_pass: false,
        stable_interval: 1,
        ..ReorgConfig::default()
    };
    let reorg = Reorganizer::new(Arc::clone(&db), cfg.clone())
        .with_fail_point(FailPoint::new(FailSite::Pass3AfterStable, 1));
    match reorg.pass3_shrink() {
        Err(obr_core::CoreError::InjectedCrash(_)) => {}
        other => return Err(format!("expected injected pass-3 crash, got {other:?}").into()),
    }

    // Ops behind the read frontier: the §7.2 observer must mirror them into
    // the side file for catch-up to replay into the new tree.
    let s = Session::new(Arc::clone(&db));
    for k in 0..12u64 {
        op_insert(&s, &mut model, &mut oracle, k * 2 + 1)?;
    }
    for k in 50..70u64 {
        op_delete(&s, &mut model, &mut oracle, k * 2)?;
    }

    db.pool().flush_all()?;
    db.log().flush_all()?;
    let end_mark = db.log().durable_lsn();
    Ok(Scenario {
        name: "pass3-interrupted",
        journal,
        log: Arc::clone(db.log()),
        cfg,
        base_mark,
        end_mark,
        oracle,
        frames: 2048,
        wal_dir: None,
    })
}

/// Scenario 3: the same churn-reorg-churn shape as scenario 1, but against
/// a real file-backed **segmented** log with a small seal threshold. Before
/// journaling begins the workload seals several segments and runs
/// [`Database::truncate_log`], recycling everything below the checkpoint —
/// so the journaled window starts on a log whose first LSN is far from 1,
/// and the reorganization inside the window seals at least one more
/// segment. Every enumerated crash state of this scenario therefore
/// exercises recovery over seal and recycle boundaries.
///
/// The window itself must not truncate: [`LogManager::clone_prefix`] of the
/// final log cannot reproduce records an in-window truncation dropped, so a
/// mid-window recycle would make earlier crash states unmaterializable.
fn scenario_segmented_wal(
    opts: &CrashCheckOptions,
) -> Result<Scenario, Box<dyn std::error::Error>> {
    // The check crate sits outside the engine's sync facade (it *checks*
    // the engine), so raw std atomics are fine here.
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEG_SCENARIO_DIRS: AtomicU64 = AtomicU64::new(0);
    // relaxed: scratch-directory name uniqueness counter only.
    let n = SEG_SCENARIO_DIRS.fetch_add(1, Ordering::Relaxed);
    let root =
        std::env::temp_dir().join(format!("obr-crashcheck-segwal-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let wal_dir = root.join("wal");

    let pages = 1536u32;
    let inner = Arc::new(InMemoryDisk::new(pages));
    let journal = Arc::new(JournalDisk::new(inner as Arc<dyn DiskManager>));
    let log = Arc::new(LogManager::open_dir(&wal_dir, opts.segment_bytes)?);
    let db = Database::create_with_log(
        Arc::clone(&journal) as Arc<dyn DiskManager>,
        Arc::clone(&log),
        pages as usize,
        SidePointerMode::TwoWay,
        EngineConfig::default(),
    )?;
    journal.set_witness(Arc::clone(db.log()) as Arc<dyn DurabilityWitness>);
    let records: Vec<(u64, Vec<u8>)> = (0..220u64).map(|k| (k * 3, val(k))).collect();
    db.tree().bulk_load(&records, 0.3, 0.5)?;
    let mut model: BTreeMap<u64, Vec<u8>> = records.into_iter().collect();

    // Pre-journal churn: enough log volume to seal several segments, then a
    // checkpoint-truncate that recycles them. The crash states enumerated
    // below all live on the *survivor* of that recycle.
    let s = Session::new(Arc::clone(&db));
    let mut scratch_oracle = Vec::new();
    for k in 0..48u64 {
        op_insert(&s, &mut model, &mut scratch_oracle, 700 + k)?;
    }
    let sealed_pre_truncate = sealed_count(db.log());
    if sealed_pre_truncate == 0 {
        return Err(format!(
            "segmented scenario sealed no segments before truncation \
             (segment_bytes {} too large for the workload)",
            opts.segment_bytes
        )
        .into());
    }
    db.truncate_log()?;
    let first_seg = segment::list_segments(&wal_dir)?
        .first()
        .map(|(lsn, _)| *lsn)
        .unwrap_or(Lsn(1));
    if db.log().first_lsn() <= Lsn(1) || first_seg <= Lsn(1) {
        return Err("segmented scenario did not recycle any segment files; \
                    lower segment_bytes"
            .into());
    }
    db.pool().flush_all()?;
    db.log().flush_all()?;
    journal.begin_journal()?;
    let base_mark = db.log().durable_lsn();
    let mut oracle = vec![(base_mark.0, model.clone())];
    let sealed_at_base = sealed_count(db.log());

    // Journaled window: churn, a full reorganization, more churn — with at
    // least one seal inside it so crash states straddle a seal boundary.
    for k in 0..10u64 {
        op_insert(&s, &mut model, &mut oracle, 90 + (k / 2) * 3 + 1 + k % 2)?;
    }
    for k in 0..6u64 {
        op_delete(&s, &mut model, &mut oracle, k * 27)?;
    }
    let cfg = ReorgConfig {
        stable_interval: 3,
        ..ReorgConfig::default()
    };
    Reorganizer::new(Arc::clone(&db), cfg.clone()).run()?;
    for k in 0..6u64 {
        op_insert(&s, &mut model, &mut oracle, 800 + k)?;
    }

    db.pool().flush_all()?;
    db.log().flush_all()?;
    if sealed_count(db.log()) <= sealed_at_base {
        return Err("segmented scenario sealed no segment inside the \
                    journaled window; lower segment_bytes"
            .into());
    }
    let end_mark = db.log().durable_lsn();
    Ok(Scenario {
        name: "segmented-wal",
        journal,
        log: Arc::clone(db.log()),
        cfg,
        base_mark,
        end_mark,
        oracle,
        frames: pages as usize,
        wal_dir: Some(wal_dir),
    })
}

/// Sealed (immutable) segments currently in a log's catalog.
fn sealed_count(log: &LogManager) -> usize {
    log.segment_catalog().iter().filter(|s| s.sealed).count()
}

/// List every valid (disk prefix, log prefix) pair of a scenario. Journal
/// positions where the disk did not change (sync events) are folded into
/// the preceding disk version.
fn enumerate_states(idx: usize, sc: &Scenario) -> Vec<CrashState> {
    // (journal prefix, durable mark at that point) for each distinct disk
    // version, in order.
    let mut versions: Vec<(usize, u64)> = vec![(0, sc.base_mark.0)];
    let mut last_mark = sc.base_mark.0;
    for ev in sc.journal.events() {
        if ev.mark.0 > 0 {
            last_mark = last_mark.max(ev.mark.0);
        }
        // Writes and grows change the disk; syncs do not.
        if !ev.is_sync {
            versions.push((ev.index + 1, last_mark));
        }
    }
    let mut states = Vec::new();
    for (vi, &(j, mark)) in versions.iter().enumerate() {
        // The log may reach any length between this disk version's mark and
        // the next version's mark (or the workload end) before the next
        // write lands.
        let hi = versions
            .get(vi + 1)
            .map(|&(_, m)| m)
            .unwrap_or(sc.end_mark.0);
        for k in mark..=hi {
            states.push(CrashState {
                scenario: idx,
                disk_prefix: j,
                log_prefix: k,
            });
        }
    }
    states
}

/// The oracle snapshot in force at log prefix `k`.
fn expected_at(sc: &Scenario, k: u64) -> &BTreeMap<u64, Vec<u8>> {
    let pos = sc.oracle.partition_point(|(lsn, _)| *lsn <= k);
    &sc.oracle[pos.saturating_sub(1)].1
}

/// Context string naming a state in findings.
fn ctx(sc: &Scenario, st: CrashState) -> String {
    format!(
        "[scenario {}, disk prefix {}, log prefix {}]",
        sc.name, st.disk_prefix, st.log_prefix
    )
}

/// Materialize one crash state, run real recovery, and assert the Forward
/// Recovery contract.
fn verify_state(sc: &Scenario, st: CrashState, report: &mut Report, stats: &mut CrashCheckStats) {
    let c = ctx(sc, st);
    let disk = match sc.journal.materialize(st.disk_prefix) {
        Ok(d) => d,
        Err(e) => {
            report.error(
                CHECKER,
                "checker-error",
                None,
                None,
                format!("{c} materialize: {e}"),
            );
            return;
        }
    };
    let log = Arc::new(sc.log.clone_prefix(Lsn(st.log_prefix)));
    // Every reachable crash log must lint clean *before* recovery touches
    // it: no broken unit chains, no careful-writing violations, nothing
    // uncompletable. (Post-recovery logs are not linted — forward
    // completion legitimately logs full-record MOVEs, which the linter's
    // live-traffic model rejects.)
    let lint = lint_log(&log, &WalLintOptions::default());
    if lint.has_errors() {
        for f in lint
            .findings
            .iter()
            .filter(|f| f.severity == crate::Severity::Error)
        {
            report.error(
                CHECKER,
                "crash-prefix-wal-error",
                f.page,
                f.lsn,
                format!("{c} {f}"),
            );
        }
    }
    let db = match Database::reopen(
        disk as Arc<dyn DiskManager>,
        Arc::clone(&log),
        sc.frames,
        SidePointerMode::TwoWay,
    ) {
        Ok(db) => db,
        Err(e) => {
            report.error(
                CHECKER,
                "reopen-failed",
                None,
                Some(Lsn(st.log_prefix)),
                format!("{c} crashed state does not reopen: {e}"),
            );
            return;
        }
    };
    let rec: RecoveryReport = match recover(&db) {
        Ok(r) => r,
        Err(e) => {
            report.error(
                CHECKER,
                "recovery-failed",
                None,
                Some(Lsn(st.log_prefix)),
                format!("{c} recovery failed: {e}"),
            );
            return;
        }
    };
    stats.forward_units_completed += rec.forward_units_completed as u64;
    stats.side_entries_restored += rec.side_entries_restored as u64;

    check_tree(sc, st, &db, "after recovery", report);

    // Pass 3 in flight: the restart state must resume to a successful
    // switch, with side-file catch-up converging.
    if let Some(state) = rec.pass3_resume {
        match Reorganizer::new(Arc::clone(&db), sc.cfg.clone()).pass3_resume(state) {
            Ok(()) => {
                stats.pass3_resumes += 1;
                check_tree(sc, st, &db, "after pass-3 resume", report);
            }
            Err(e) => {
                report.error(
                    CHECKER,
                    "resume-failed",
                    None,
                    Some(Lsn(st.log_prefix)),
                    format!("{c} pass-3 resume failed: {e}"),
                );
            }
        }
    }
}

/// Structural fsck + oracle comparison for a recovered (or resumed) tree.
fn check_tree(sc: &Scenario, st: CrashState, db: &Arc<Database>, when: &str, report: &mut Report) {
    let c = ctx(sc, st);
    let fr = fsck_db(db, &FsckOptions::default());
    if fr.report.has_errors() {
        for f in fr
            .report
            .findings
            .iter()
            .filter(|f| f.severity == crate::Severity::Error)
        {
            report.error(
                CHECKER,
                "fsck-after-recovery",
                f.page,
                f.lsn,
                format!("{c} {when}: {f}"),
            );
        }
    }
    let got = match db.tree().collect_all() {
        Ok(g) => g,
        Err(e) => {
            report.error(
                CHECKER,
                "scan-failed",
                None,
                Some(Lsn(st.log_prefix)),
                format!("{c} {when}: full scan failed: {e}"),
            );
            return;
        }
    };
    let want = expected_at(sc, st.log_prefix);
    if got.len() != want.len() || !got.iter().all(|(k, v)| want.get(k) == Some(v)) {
        let got_keys: std::collections::BTreeSet<u64> = got.iter().map(|(k, _)| *k).collect();
        let want_keys: std::collections::BTreeSet<u64> = want.keys().copied().collect();
        let lost: Vec<u64> = want_keys.difference(&got_keys).take(8).copied().collect();
        let extra: Vec<u64> = got_keys.difference(&want_keys).take(8).copied().collect();
        report.error(
            CHECKER,
            "state-divergence",
            None,
            Some(Lsn(st.log_prefix)),
            format!(
                "{c} {when}: tree has {} records, oracle expects {}; \
                 lost keys (first 8): {lost:?}, unexpected keys (first 8): {extra:?}",
                got.len(),
                want.len()
            ),
        );
    }
}

/// Verify sampled byte-level torn tails: a truncated WAL file must reopen
/// to exactly the record boundary below the cut, which the boundary
/// enumeration has already proven recoverable.
fn verify_torn_tails(
    sc: &Scenario,
    opts: &CrashCheckOptions,
    scratch: &std::path::Path,
    report: &mut Report,
    stats: &mut CrashCheckStats,
) {
    if opts.torn_tail_samples == 0 {
        return;
    }
    // Segmented scenarios skip the single-file path: `open_file` numbers
    // records from LSN 1, but a recycled segmented log starts later. Their
    // torn tails go through `open_dir` in [`verify_segment_states`].
    if sc.wal_dir.is_some() {
        return;
    }
    if let Err(e) = std::fs::create_dir_all(scratch) {
        report.error(
            CHECKER,
            "checker-error",
            None,
            None,
            format!("cannot create scratch dir {}: {e}", scratch.display()),
        );
        return;
    }
    let (first_lsn, frames) = sc.log.frames_snapshot();
    let bytes = LogReader::encode_frames(frames.iter().map(Vec::as_slice));
    if bytes.is_empty() {
        return;
    }
    let mut rng = Prng::new(opts.seed ^ 0x70_72_6e);
    let path = scratch.join(format!("torn-{}.wal", sc.name));
    for _ in 0..opts.torn_tail_samples {
        let cut = rng.below(bytes.len() + 1);
        let expect = LogReader::last_lsn(&LogReader::scan(&bytes[..cut]), first_lsn);
        if let Err(e) = std::fs::write(&path, &bytes[..cut]) {
            report.error(
                CHECKER,
                "checker-error",
                None,
                None,
                format!("cannot write scratch file: {e}"),
            );
            return;
        }
        match LogManager::open_file(&path) {
            Ok(log) => {
                let got = log.durable_lsn();
                if got != expect {
                    report.error(
                        CHECKER,
                        "torn-tail-divergence",
                        None,
                        Some(expect),
                        format!(
                            "[scenario {}] WAL truncated at byte {cut}: open_file \
                             recovered through LSN {got}, scan says the clean \
                             prefix ends at LSN {expect}",
                            sc.name
                        ),
                    );
                }
            }
            Err(e) => {
                report.error(
                    CHECKER,
                    "torn-tail-divergence",
                    None,
                    Some(expect),
                    format!(
                        "[scenario {}] WAL truncated at byte {cut} fails to open: {e}",
                        sc.name
                    ),
                );
            }
        }
        stats.torn_tails_checked += 1;
    }
}

/// Verify the segment-directory crash artifacts of a segmented-WAL
/// scenario through the real [`LogManager::open_dir`] reopen path:
///
/// * sampled byte cuts of the **active** segment resolve to the record
///   boundary below the cut (torn-tail truncation),
/// * an empty next-named segment left by a crash **mid-seal** is adopted
///   as the new active segment with nothing lost,
/// * a **partial recycle** (oldest sealed segment already deleted) opens
///   with an advanced first LSN,
/// * a **missing middle** segment and a **torn sealed** segment are
///   rejected as corruption, never silently skipped or truncated.
fn verify_segment_states(
    sc: &Scenario,
    opts: &CrashCheckOptions,
    scratch: &std::path::Path,
    report: &mut Report,
    stats: &mut CrashCheckStats,
) {
    if sc.wal_dir.is_none() {
        return;
    }
    if let Err(e) = verify_segment_states_inner(sc, opts, scratch, report, stats) {
        report.error(
            CHECKER,
            "checker-error",
            None,
            None,
            format!("[scenario {}] segment-state verification: {e}", sc.name),
        );
    }
}

fn verify_segment_states_inner(
    sc: &Scenario,
    opts: &CrashCheckOptions,
    scratch: &std::path::Path,
    report: &mut Report,
    stats: &mut CrashCheckStats,
) -> Result<(), Box<dyn std::error::Error>> {
    let wal_dir = sc.wal_dir.as_ref().expect("caller checked");
    let segs = segment::list_segments(wal_dir)?;
    if segs.len() < 3 {
        return Err(format!(
            "expected >= 3 segment files (2 sealed + active), found {}",
            segs.len()
        )
        .into());
    }
    let seg_bytes = opts.segment_bytes;
    let dir_first = segs[0].0;
    // Copy the segment directory into a scratch subdirectory we can mutate.
    let fresh = |tag: &str| -> std::io::Result<PathBuf> {
        let dst = scratch.join(format!("segstate-{}-{tag}", sc.name));
        std::fs::remove_dir_all(&dst).ok();
        std::fs::create_dir_all(&dst)?;
        for (_, path) in &segs {
            let name = path.file_name().expect("segment files have names");
            std::fs::copy(path, dst.join(name))?;
        }
        Ok(dst)
    };

    // --- Torn active tail: every byte cut resolves to the boundary. ---
    let (active_first, active_path) = segs.last().expect("len checked");
    let active_name = active_path.file_name().expect("segment files have names");
    let active_bytes = std::fs::read(active_path)?;
    let mut rng = Prng::new(opts.seed ^ 0x5e_67);
    let samples = opts.torn_tail_samples.clamp(1, 16);
    for _ in 0..samples {
        let cut = rng.below(active_bytes.len() + 1);
        let dir = fresh("torn-active")?;
        std::fs::write(dir.join(active_name), &active_bytes[..cut])?;
        let expect =
            Lsn(active_first.0 - 1 + LogReader::scan(&active_bytes[..cut]).frames.len() as u64);
        match LogManager::open_dir(&dir, seg_bytes) {
            Ok(log) => {
                if log.durable_lsn() != expect || log.first_lsn() != dir_first {
                    report.error(
                        CHECKER,
                        "segment-state-divergence",
                        None,
                        Some(expect),
                        format!(
                            "[scenario {}] active segment cut at byte {cut}: open_dir \
                             recovered LSNs {}..={}, expected {dir_first}..={expect}",
                            sc.name,
                            log.first_lsn(),
                            log.durable_lsn()
                        ),
                    );
                }
            }
            Err(e) => {
                report.error(
                    CHECKER,
                    "segment-state-divergence",
                    None,
                    Some(expect),
                    format!(
                        "[scenario {}] active segment cut at byte {cut} fails to \
                         open: {e}",
                        sc.name
                    ),
                );
            }
        }
        stats.segment_states_checked += 1;
    }

    // --- Crash mid-seal: the empty next segment file already exists. ---
    // A seal creates the next file before any bookkeeping; the prior
    // active segment (flushed whole) becomes sealed, the empty file
    // becomes active, and no record moves.
    if !active_bytes.is_empty() {
        let dir = fresh("mid-seal")?;
        let next = Lsn(sc.end_mark.0 + 1);
        std::fs::write(dir.join(segment::segment_file_name(next)), b"")?;
        match LogManager::open_dir(&dir, seg_bytes) {
            Ok(log) => {
                if log.durable_lsn() != sc.end_mark || log.first_lsn() != dir_first {
                    report.error(
                        CHECKER,
                        "segment-state-divergence",
                        None,
                        Some(sc.end_mark),
                        format!(
                            "[scenario {}] crash mid-seal: open_dir recovered LSNs \
                             {}..={}, expected {dir_first}..={}",
                            sc.name,
                            log.first_lsn(),
                            log.durable_lsn(),
                            sc.end_mark
                        ),
                    );
                }
            }
            Err(e) => {
                report.error(
                    CHECKER,
                    "segment-state-divergence",
                    None,
                    Some(sc.end_mark),
                    format!("[scenario {}] crash mid-seal fails to open: {e}", sc.name),
                );
            }
        }
        stats.segment_states_checked += 1;
    }

    // --- Partial recycle: oldest sealed segment already deleted. ---
    {
        let dir = fresh("partial-recycle")?;
        let name = segs[0].1.file_name().expect("segment files have names");
        std::fs::remove_file(dir.join(name))?;
        match LogManager::open_dir(&dir, seg_bytes) {
            Ok(log) => {
                if log.first_lsn() != segs[1].0 || log.durable_lsn() != sc.end_mark {
                    report.error(
                        CHECKER,
                        "segment-state-divergence",
                        None,
                        Some(segs[1].0),
                        format!(
                            "[scenario {}] partial recycle: open_dir recovered LSNs \
                             {}..={}, expected {}..={}",
                            sc.name,
                            log.first_lsn(),
                            log.durable_lsn(),
                            segs[1].0,
                            sc.end_mark
                        ),
                    );
                }
            }
            Err(e) => {
                report.error(
                    CHECKER,
                    "segment-state-divergence",
                    None,
                    Some(segs[1].0),
                    format!("[scenario {}] partial recycle fails to open: {e}", sc.name),
                );
            }
        }
        stats.segment_states_checked += 1;
    }

    // --- Missing middle segment: must be rejected, never skipped. ---
    {
        let dir = fresh("middle-gap")?;
        let name = segs[1].1.file_name().expect("segment files have names");
        std::fs::remove_file(dir.join(name))?;
        if let Ok(log) = LogManager::open_dir(&dir, seg_bytes) {
            report.error(
                CHECKER,
                "segment-corruption-undetected",
                None,
                Some(segs[1].0),
                format!(
                    "[scenario {}] open_dir silently skipped a missing middle \
                     segment and recovered LSNs {}..={}",
                    sc.name,
                    log.first_lsn(),
                    log.durable_lsn()
                ),
            );
        }
        stats.segment_states_checked += 1;
    }

    // --- Torn sealed segment: must be rejected, never truncated. ---
    {
        let dir = fresh("torn-sealed")?;
        let name = segs[0].1.file_name().expect("segment files have names");
        let bytes = std::fs::read(&segs[0].1)?;
        if bytes.len() > 3 {
            std::fs::write(dir.join(name), &bytes[..bytes.len() - 3])?;
            if let Ok(log) = LogManager::open_dir(&dir, seg_bytes) {
                report.error(
                    CHECKER,
                    "segment-corruption-undetected",
                    None,
                    Some(segs[0].0),
                    format!(
                        "[scenario {}] open_dir silently truncated a torn sealed \
                         segment and recovered LSNs {}..={}",
                        sc.name,
                        log.first_lsn(),
                        log.durable_lsn()
                    ),
                );
            }
            stats.segment_states_checked += 1;
        }
    }
    Ok(())
}
