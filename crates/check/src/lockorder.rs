//! Lock-acquisition-order manifest checker.
//!
//! The repository commits a machine-checked manifest,
//! `check/lockorder.toml`, declaring every lock *class* in the engine
//! (the `&'static str` names passed to `obr_sync::Mutex::named` and
//! friends) and which classes a thread may acquire while already holding
//! each class. The interleaving explorer (`obr-race`) records the edges
//! actually exercised — `(held class, acquired class)` pairs — across
//! every schedule it runs; this module diffs that observation set
//! against the manifest:
//!
//! - every **observed** edge must be **declared** (an undeclared edge is
//!   a new nested-acquisition pattern nobody vetted → error);
//! - the **declared** graph must be **acyclic** (a cycle in the manifest
//!   means the documented protocol itself permits deadlock → error);
//! - declared-but-unobserved edges are reported as notes, so coverage
//!   loss is visible without failing the build.
//!
//! The manifest is parsed by a deliberately tiny TOML-subset reader
//! (tables, string and string-array values, comments) so the offline
//! build needs no TOML dependency. The subset is documented in the
//! manifest file itself.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::report::Report;

/// A parsed `check/lockorder.toml`.
#[derive(Debug, Default, Clone)]
pub struct LockOrderManifest {
    /// Declared lock classes: name → one-line description.
    pub classes: BTreeMap<String, String>,
    /// Declared edges: `(held, acquired)` pairs a thread may form.
    pub allowed: BTreeSet<(String, String)>,
}

/// Parse the TOML subset used by the manifest. Returns the manifest or
/// a list of syntax errors with line numbers.
pub fn parse_manifest(text: &str) -> Result<LockOrderManifest, Vec<String>> {
    enum Section {
        None,
        Classes,
        Order,
        Unknown,
    }
    let mut m = LockOrderManifest::default();
    let mut errors = Vec::new();
    let mut section = Section::None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            section = match name.trim() {
                "classes" => Section::Classes,
                "may_hold_while_acquiring" => Section::Order,
                other => {
                    errors.push(format!("line {lineno}: unknown table [{other}]"));
                    Section::Unknown
                }
            };
            continue;
        }
        let Some((key_raw, value_raw)) = line.split_once('=') else {
            errors.push(format!("line {lineno}: expected `key = value`"));
            continue;
        };
        let Some(key) = parse_key(key_raw.trim()) else {
            errors.push(format!("line {lineno}: bad key {:?}", key_raw.trim()));
            continue;
        };
        let value = value_raw.trim();
        match section {
            Section::Classes => match parse_string(value) {
                Some(desc) => {
                    if m.classes.insert(key.clone(), desc).is_some() {
                        errors.push(format!("line {lineno}: class {key:?} declared twice"));
                    }
                }
                None => errors.push(format!("line {lineno}: expected a quoted string value")),
            },
            Section::Order => match parse_string_array(value) {
                Some(targets) => {
                    for t in targets {
                        if !m.allowed.insert((key.clone(), t.clone())) {
                            errors.push(format!(
                                "line {lineno}: edge {key:?} -> {t:?} declared twice"
                            ));
                        }
                    }
                }
                None => errors.push(format!("line {lineno}: expected an array of strings")),
            },
            Section::None => {
                errors.push(format!("line {lineno}: entry before any [table]"));
            }
            Section::Unknown => {}
        }
    }
    if errors.is_empty() {
        Ok(m)
    } else {
        Err(errors)
    }
}

/// Read and parse a manifest file; I/O and syntax problems become
/// `lockorder` error findings on the returned report.
pub fn load_manifest(path: &Path) -> Result<LockOrderManifest, Report> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            let mut r = Report::new();
            r.error(
                "lockorder",
                "manifest-unreadable",
                None,
                None,
                format!("{}: {e}", path.display()),
            );
            return Err(r);
        }
    };
    parse_manifest(&text).map_err(|errors| {
        let mut r = Report::new();
        for e in errors {
            r.error(
                "lockorder",
                "manifest-syntax",
                None,
                None,
                format!("{}: {e}", path.display()),
            );
        }
        r
    })
}

/// Diff an observed edge set against the manifest. See the module docs
/// for the three checks. `observed` holds `(held, acquired)` class
/// pairs as recorded by the model scheduler.
pub fn check_lock_order(
    manifest: &LockOrderManifest,
    observed: &BTreeSet<(String, String)>,
) -> Report {
    let mut report = Report::new();

    // 1. Internal consistency: every class named by an edge is declared.
    for (a, b) in &manifest.allowed {
        for c in [a, b] {
            if !manifest.classes.contains_key(c) {
                report.error(
                    "lockorder",
                    "undeclared-class",
                    None,
                    None,
                    format!("edge {a:?} -> {b:?} names class {c:?} missing from [classes]"),
                );
            }
        }
    }

    // 2. The declared graph must be acyclic.
    if let Some(cycle) = find_cycle(&manifest.allowed) {
        report.error(
            "lockorder",
            "manifest-cycle",
            None,
            None,
            format!("declared ordering permits deadlock: {}", cycle.join(" -> ")),
        );
    }

    // 3. Every observed edge must be declared; observed classes known.
    for (held, acq) in observed {
        if !manifest.classes.contains_key(held) || !manifest.classes.contains_key(acq) {
            report.error(
                "lockorder",
                "unknown-observed-class",
                None,
                None,
                format!("observed edge {held:?} -> {acq:?} uses a class missing from [classes]"),
            );
        }
        if !manifest.allowed.contains(&(held.clone(), acq.clone())) {
            report.error(
                "lockorder",
                "undeclared-edge",
                None,
                None,
                format!(
                    "observed nested acquisition {held:?} -> {acq:?} is not in \
                     [may_hold_while_acquiring]; vet it and add it, or fix the code"
                ),
            );
        }
    }

    // 4. Belt and braces: the observed graph itself must be acyclic even
    //    if the manifest check above was skipped or wrong.
    if let Some(cycle) = find_cycle(observed) {
        report.error(
            "lockorder",
            "observed-cycle",
            None,
            None,
            format!("observed acquisitions form a cycle: {}", cycle.join(" -> ")),
        );
    }

    // 5. Coverage notes.
    let unobserved: Vec<&(String, String)> = manifest
        .allowed
        .iter()
        .filter(|e| !observed.contains(*e))
        .collect();
    report.note(format!(
        "lock-order: {} classes, {} declared edges, {} observed ({} declared-but-unobserved)",
        manifest.classes.len(),
        manifest.allowed.len(),
        observed.len(),
        unobserved.len(),
    ));
    for (a, b) in unobserved {
        report.note(format!("declared edge never observed: {a:?} -> {b:?}"));
    }
    report
}

/// Convenience wrapper: load `path` and diff `observed` against it.
pub fn check_lock_order_file(path: &Path, observed: &BTreeSet<(String, String)>) -> Report {
    match load_manifest(path) {
        Ok(m) => check_lock_order(&m, observed),
        Err(r) => r,
    }
}

/// Find any cycle in the directed edge set; returns the node sequence
/// `n0 -> n1 -> ... -> n0` if one exists.
fn find_cycle(edges: &BTreeSet<(String, String)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    // Iterative DFS with colors: 0 unvisited, 1 on stack, 2 done.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    for &start in adj.keys() {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Stack of (node, next-child-index).
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        color.insert(start, 1);
        while let Some(top) = stack.len().checked_sub(1) {
            let (node, next) = stack[top];
            let children = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if next >= children.len() {
                color.insert(node, 2);
                stack.pop();
                continue;
            }
            let child = children[next];
            stack[top].1 += 1;
            match color.get(child).copied().unwrap_or(0) {
                0 => {
                    parent.insert(child, node);
                    color.insert(child, 1);
                    stack.push((child, 0));
                }
                1 => {
                    // Found a back edge: reconstruct node -> ... -> child.
                    let mut cycle = vec![child.to_string()];
                    let mut cur = node;
                    while cur != child {
                        cycle.push(cur.to_string());
                        cur = parent.get(cur).copied().unwrap_or(child);
                    }
                    cycle.push(child.to_string());
                    cycle.reverse();
                    return Some(cycle);
                }
                _ => {}
            }
        }
    }
    None
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_key(raw: &str) -> Option<String> {
    if let Some(q) = parse_string(raw) {
        return Some(q);
    }
    let ok = !raw.is_empty()
        && raw
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'));
    ok.then(|| raw.to_string())
}

fn parse_string(raw: &str) -> Option<String> {
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    // No escapes in the subset: class names never need them.
    (!inner.contains('"')).then(|| inner.to_string())
}

fn parse_string_array(raw: &str) -> Option<Vec<String>> {
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[classes]
"a.lock" = "first"
"b.lock" = "second"
"c.lock" = "third"

[may_hold_while_acquiring]
"a.lock" = ["b.lock", "c.lock"]
"b.lock" = ["c.lock"]
"#;

    fn edges(pairs: &[(&str, &str)]) -> BTreeSet<(String, String)> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn parses_the_subset() {
        let m = parse_manifest(SAMPLE).unwrap();
        assert_eq!(m.classes.len(), 3);
        assert_eq!(m.classes["a.lock"], "first");
        assert_eq!(m.allowed.len(), 3);
        assert!(m.allowed.contains(&("b.lock".into(), "c.lock".into())));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_manifest("[classes]\nnot a kv line\n").unwrap_err();
        assert!(err[0].contains("line 2"), "{err:?}");
    }

    #[test]
    fn observed_subset_of_manifest_is_clean() {
        let m = parse_manifest(SAMPLE).unwrap();
        let r = check_lock_order(&m, &edges(&[("a.lock", "b.lock")]));
        assert!(r.is_clean(), "{r}");
        // Unobserved edges surface as notes, not findings.
        assert!(r.info.iter().any(|l| l.contains("never observed")), "{r}");
    }

    #[test]
    fn undeclared_edge_is_an_error() {
        let m = parse_manifest(SAMPLE).unwrap();
        let r = check_lock_order(&m, &edges(&[("c.lock", "a.lock")]));
        assert!(r.has_errors(), "{r}");
        assert!(r.findings.iter().any(|f| f.code == "undeclared-edge"));
    }

    #[test]
    fn manifest_cycle_is_an_error() {
        let text = r#"
[classes]
"a" = "x"
"b" = "y"
[may_hold_while_acquiring]
"a" = ["b"]
"b" = ["a"]
"#;
        let m = parse_manifest(text).unwrap();
        let r = check_lock_order(&m, &BTreeSet::new());
        assert!(r.findings.iter().any(|f| f.code == "manifest-cycle"), "{r}");
    }

    #[test]
    fn edge_naming_unknown_class_is_an_error() {
        let text = r#"
[classes]
"a" = "x"
[may_hold_while_acquiring]
"a" = ["ghost"]
"#;
        let m = parse_manifest(text).unwrap();
        let r = check_lock_order(&m, &BTreeSet::new());
        assert!(
            r.findings.iter().any(|f| f.code == "undeclared-class"),
            "{r}"
        );
    }
}
