//! WAL linter: read-only structural replay of a log file.
//!
//! The linter parses a log without truncating or repairing it (unlike
//! [`obr_wal::LogManager`]'s open path, which trims torn tails) and checks
//! the write-ahead-logging discipline of §5:
//!
//! - **Careful writing** — under [`MovePayload::Keys`] logging, a MOVE may
//!   carry keys only; a [`MovePayload::Records`] payload is flagged unless
//!   it is the compensating reverse of an earlier MOVE in the same unit
//!   (the §5.2 undo path legitimately logs full records, because the
//!   source page has already been emptied).
//! - **Unit chaining** — every chained record (MOVE/MODIFY/SWAP/SIDEPTR)
//!   must name the open unit and carry `prev_lsn` equal to the unit's most
//!   recent LSN (the BEGIN's LSN for the first). A mismatch means the log
//!   was reordered or spliced.
//! - **Completability** — at end of log, an open unit whose chain is
//!   intact is a crash-shaped tail (warning: recovery will finish it); an
//!   open unit with a broken chain can neither be completed forward nor
//!   was it finished (error).
//! - **Checkpoint ordering** — a checkpoint's reorg-table snapshot must
//!   reference LSNs of reorg records that precede the checkpoint, with
//!   `begin_lsn <= recent_lsn < checkpoint LSN`.
//! - **Transaction pairing** — begin/commit/abort bracketing per
//!   transaction ([`TxnId::SYSTEM`] is exempt: system actions are logged
//!   without brackets).
//! - **Pass-3 progress** — `stable_key` never regresses within one build
//!   of the new tree (it resets at the switch).

use std::collections::{BTreeMap, BTreeSet};
use std::io::Read;
use std::path::Path;

use obr_storage::{Lsn, PageId};
use obr_wal::{LogManager, LogReader, LogRecord, MovePayload, TornReason, TxnId, UnitId};

use crate::report::Report;

/// Name this checker stamps on findings.
const CHECKER: &str = "wal";

/// Linter configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalLintOptions {
    /// Accept full-record MOVE payloads unconditionally (the
    /// `LogStrategy::FullRecords` configuration, where careful writing is
    /// not enforced and E6 measures the logging overhead).
    pub allow_full_records: bool,
}

/// The in-flight reorganization unit while scanning.
struct OpenUnit {
    unit: UnitId,
    begin_lsn: Lsn,
    recent_lsn: Lsn,
    chain_broken: bool,
    /// `(org, dest)` of forward MOVEs seen so far, for undo detection.
    moves: Vec<(PageId, PageId)>,
    /// Chained work records (MOVE/MODIFY/SWAP/SIDEPTR) attributed to the
    /// unit, for empty-unit detection at END.
    work: u64,
}

/// Scan state for [`lint_records`].
struct Linter<'a> {
    opts: &'a WalLintOptions,
    report: Report,
    open: Option<OpenUnit>,
    /// LSNs at which reorg-unit records (BEGIN/chained/END) were seen.
    reorg_lsns: BTreeSet<Lsn>,
    /// Active user transactions and the LSN of their begin record.
    txns: BTreeMap<TxnId, Lsn>,
    finished_units: u64,
    checkpoints: u64,
    stable_key: Option<u64>,
    records: u64,
}

impl<'a> Linter<'a> {
    fn new(opts: &'a WalLintOptions) -> Linter<'a> {
        Linter {
            opts,
            report: Report::new(),
            open: None,
            reorg_lsns: BTreeSet::new(),
            txns: BTreeMap::new(),
            finished_units: 0,
            checkpoints: 0,
            stable_key: None,
            records: 0,
        }
    }

    /// Check a chained record's `unit`/`prev_lsn` against the open unit and
    /// advance the chain. Returns `false` when the record is orphaned.
    fn chain(&mut self, lsn: Lsn, unit: UnitId, prev_lsn: Lsn, what: &str) -> bool {
        let Some(open) = self.open.as_mut() else {
            self.report.error(
                CHECKER,
                "orphan-unit-record",
                None,
                Some(lsn),
                format!(
                    "{what} for unit {} with no open unit (missing BEGIN)",
                    unit.0
                ),
            );
            return false;
        };
        if open.unit != unit {
            self.report.error(
                CHECKER,
                "unit-mismatch",
                None,
                Some(lsn),
                format!(
                    "{what} names unit {} but unit {} is open",
                    unit.0, open.unit.0
                ),
            );
            open.chain_broken = true;
            return false;
        }
        if prev_lsn != open.recent_lsn {
            self.report.error(
                CHECKER,
                "broken-prev-chain",
                None,
                Some(lsn),
                format!(
                    "{what} has prev_lsn={} but the unit's most recent LSN is {} \
                     (reordered or spliced log?)",
                    prev_lsn, open.recent_lsn
                ),
            );
            open.chain_broken = true;
        }
        open.recent_lsn = lsn;
        open.work += 1;
        true
    }

    fn record(&mut self, lsn: Lsn, rec: &LogRecord) {
        self.records += 1;
        match rec {
            LogRecord::ReorgBegin { unit, .. } => {
                self.reorg_lsns.insert(lsn);
                if let Some(open) = &self.open {
                    self.report.error(
                        CHECKER,
                        "overlapping-units",
                        None,
                        Some(lsn),
                        format!(
                            "unit {} begins while unit {} (begun at LSN {}) is \
                             still open — units are serial by construction",
                            unit.0, open.unit.0, open.begin_lsn
                        ),
                    );
                }
                self.open = Some(OpenUnit {
                    unit: *unit,
                    begin_lsn: lsn,
                    recent_lsn: lsn,
                    chain_broken: false,
                    moves: Vec::new(),
                    work: 0,
                });
            }
            LogRecord::ReorgMove {
                unit,
                org,
                dest,
                payload,
                prev_lsn,
            } => {
                self.reorg_lsns.insert(lsn);
                let in_unit = self.chain(lsn, *unit, *prev_lsn, "MOVE");
                if let MovePayload::Records(_) = payload {
                    // A full-record payload is only legal as the §5.2
                    // compensating move, which reverses an earlier
                    // (org, dest) pair of the same unit.
                    let is_undo = in_unit
                        && self
                            .open
                            .as_ref()
                            .is_some_and(|o| o.moves.contains(&(*dest, *org)));
                    if !is_undo && !self.opts.allow_full_records {
                        self.report.error(
                            CHECKER,
                            "careful-writing-violation",
                            Some(*org),
                            Some(lsn),
                            format!(
                                "MOVE {org} -> {dest} logs full records; under \
                                 careful writing a forward MOVE carries keys only"
                            ),
                        );
                    }
                }
                if in_unit {
                    if let Some(open) = self.open.as_mut() {
                        open.moves.push((*org, *dest));
                    }
                }
            }
            LogRecord::ReorgSwap { unit, prev_lsn, .. } => {
                self.reorg_lsns.insert(lsn);
                self.chain(lsn, *unit, *prev_lsn, "SWAP");
            }
            LogRecord::ReorgModify { unit, prev_lsn, .. } => {
                self.reorg_lsns.insert(lsn);
                self.chain(lsn, *unit, *prev_lsn, "MODIFY");
            }
            LogRecord::ReorgSidePtr { unit, prev_lsn, .. } => {
                self.reorg_lsns.insert(lsn);
                self.chain(lsn, *unit, *prev_lsn, "SIDEPTR");
            }
            LogRecord::ReorgEnd { unit, .. } => {
                self.reorg_lsns.insert(lsn);
                match self.open.take() {
                    None => self.report.error(
                        CHECKER,
                        "orphan-end",
                        None,
                        Some(lsn),
                        format!("END for unit {} with no open unit", unit.0),
                    ),
                    Some(open) if open.unit != *unit => {
                        self.report.error(
                            CHECKER,
                            "unit-mismatch",
                            None,
                            Some(lsn),
                            format!("END names unit {} but unit {} is open", unit.0, open.unit.0),
                        );
                    }
                    Some(open) => {
                        if open.work == 0 {
                            // Recovery legitimately closes a unit that had
                            // logged no work after a crash right past BEGIN,
                            // so an empty unit is suspicious but not fatal.
                            self.report.warning(
                                CHECKER,
                                "empty-unit",
                                None,
                                Some(lsn),
                                format!(
                                    "unit {} (begun at LSN {}) ends with no \
                                     MOVE/MODIFY/SWAP/SIDEPTR records",
                                    open.unit.0, open.begin_lsn
                                ),
                            );
                        }
                        self.finished_units += 1;
                    }
                }
            }
            LogRecord::Checkpoint { data } => {
                self.checkpoints += 1;
                let snap = &data.reorg;
                if let Some(recent) = snap.recent_lsn {
                    if recent >= lsn {
                        self.report.error(
                            CHECKER,
                            "checkpoint-order",
                            None,
                            Some(lsn),
                            format!(
                                "checkpoint snapshot references recent_lsn={recent} \
                                 at or after the checkpoint itself"
                            ),
                        );
                    } else if !self.reorg_lsns.contains(&recent) {
                        self.report.error(
                            CHECKER,
                            "checkpoint-dangling-lsn",
                            None,
                            Some(lsn),
                            format!(
                                "checkpoint snapshot references recent_lsn={recent}, \
                                 which is not the LSN of any reorg record seen so far"
                            ),
                        );
                    }
                }
                if let Some(begin) = snap.begin_lsn {
                    if begin >= lsn || !self.reorg_lsns.contains(&begin) {
                        self.report.error(
                            CHECKER,
                            "checkpoint-dangling-lsn",
                            None,
                            Some(lsn),
                            format!(
                                "checkpoint snapshot references begin_lsn={begin}, \
                                 which is not a preceding reorg-record LSN"
                            ),
                        );
                    }
                    if let Some(recent) = snap.recent_lsn {
                        if begin > recent {
                            self.report.error(
                                CHECKER,
                                "checkpoint-order",
                                None,
                                Some(lsn),
                                format!(
                                    "checkpoint snapshot has begin_lsn={begin} > \
                                     recent_lsn={recent}"
                                ),
                            );
                        }
                    }
                }
            }
            LogRecord::Pass3Stable { state } => {
                if let Some(prev) = self.stable_key {
                    if state.stable_key < prev {
                        self.report.error(
                            CHECKER,
                            "stable-key-regression",
                            None,
                            Some(lsn),
                            format!(
                                "Pass-3 stable key regressed from {prev} to {}",
                                state.stable_key
                            ),
                        );
                    }
                }
                self.stable_key = Some(state.stable_key);
            }
            LogRecord::Pass3Switch { .. } => {
                // A switch completes the build; a later Pass 3 starts over.
                self.stable_key = None;
            }
            LogRecord::TxnBegin { txn } => {
                if *txn != TxnId::SYSTEM && self.txns.insert(*txn, lsn).is_some() {
                    self.report.error(
                        CHECKER,
                        "txn-double-begin",
                        None,
                        Some(lsn),
                        format!("transaction {} begins twice", txn.0),
                    );
                }
            }
            LogRecord::TxnCommit { txn } | LogRecord::TxnAbort { txn } => {
                if *txn != TxnId::SYSTEM && self.txns.remove(txn).is_none() {
                    self.report.error(
                        CHECKER,
                        "txn-unpaired-end",
                        None,
                        Some(lsn),
                        format!("transaction {} ends without a begin", txn.0),
                    );
                }
            }
            LogRecord::TxnInsert { .. }
            | LogRecord::TxnDelete { .. }
            | LogRecord::TxnUpdate { .. }
            | LogRecord::Clr { .. }
            | LogRecord::Smo { .. } => {}
        }
    }

    fn finish(mut self, last_lsn: Option<Lsn>) -> Report {
        if let Some(open) = self.open.take() {
            if open.chain_broken {
                self.report.error(
                    CHECKER,
                    "unit-uncompletable",
                    None,
                    Some(open.begin_lsn),
                    format!(
                        "unit {} (begun at LSN {}) was never finished and its \
                         chain is broken: it can neither be completed forward \
                         nor rolled back from the log",
                        open.unit.0, open.begin_lsn
                    ),
                );
            } else {
                self.report.warning(
                    CHECKER,
                    "unit-open-at-eof",
                    None,
                    Some(open.recent_lsn),
                    format!(
                        "unit {} (begun at LSN {}) is open at end of log — \
                         crash-shaped tail; recovery will undo it",
                        open.unit.0, open.begin_lsn
                    ),
                );
            }
        }
        self.report.note(format!(
            "scanned {} records (last LSN {}), {} finished reorg units, {} checkpoints",
            self.records,
            last_lsn.map_or_else(|| "-".into(), |l| l.to_string()),
            self.finished_units,
            self.checkpoints,
        ));
        self.report
    }
}

/// Lint an already-decoded record sequence.
pub fn lint_records(records: &[(Lsn, LogRecord)], opts: &WalLintOptions) -> Report {
    let mut linter = Linter::new(opts);
    let mut last: Option<Lsn> = None;
    for (lsn, rec) in records {
        if let Some(prev) = last {
            if *lsn <= prev {
                linter.report.error(
                    CHECKER,
                    "lsn-not-monotonic",
                    None,
                    Some(*lsn),
                    format!("LSN {lsn} follows LSN {prev}"),
                );
            }
        }
        last = Some(*lsn);
        linter.record(*lsn, rec);
    }
    linter.finish(last)
}

/// Lint a live [`LogManager`]'s full record history.
pub fn lint_log(log: &LogManager, opts: &WalLintOptions) -> Report {
    match log.records_from(Lsn(1)) {
        Ok(records) => lint_records(&records, opts),
        Err(e) => {
            let mut report = Report::new();
            report.error(
                CHECKER,
                "log-unreadable",
                None,
                None,
                format!("cannot read log records: {e}"),
            );
            report
        }
    }
}

/// Lint a log file on disk without repairing it.
///
/// Unlike [`LogManager`]'s open path this never truncates a torn tail:
/// the tail is reported as a finding naming the byte offset and the last
/// intact LSN before it, and the intact prefix is linted. Frame parsing is
/// [`LogReader::scan`], the same parser the open path uses, so the linter
/// and recovery agree on where the clean prefix ends.
pub fn lint_wal_file(path: &Path, opts: &WalLintOptions) -> std::io::Result<Report> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;

    let scan = LogReader::scan(&bytes);
    let mut report = Report::new();
    if let Some(tail) = scan.torn {
        let last = scan.records.len() as u64;
        let (code, what) = match tail.reason {
            TornReason::TruncatedLength => {
                ("torn-frame", "trailing bytes too short for a frame header")
            }
            TornReason::TruncatedFrame => ("torn-frame", "frame cut short"),
            TornReason::Undecodable => ("undecodable-frame", "frame bytes do not decode"),
        };
        report.error(
            CHECKER,
            code,
            None,
            Some(Lsn(last)),
            format!(
                "{what} at byte offset {}; last intact record is LSN {last}",
                tail.offset
            ),
        );
    }
    let records: Vec<(Lsn, LogRecord)> = scan
        .records
        .into_iter()
        .enumerate()
        .map(|(i, rec)| (Lsn(i as u64 + 1), rec))
        .collect();
    report.merge(lint_records(&records, opts));
    Ok(report)
}

/// Lint a segmented WAL directory (`wal-<first-LSN>.seg` files) without
/// repairing it.
///
/// Segment-level structure is checked first — contiguous first-LSN naming,
/// no empty or torn **sealed** segments (only the active segment, the one
/// with the highest first LSN, may legitimately end mid-frame after a
/// crash) — then the concatenated record stream is linted exactly like a
/// single file.
pub fn lint_wal_dir(dir: &Path, opts: &WalLintOptions) -> std::io::Result<Report> {
    let segments = obr_wal::segment::list_segments(dir)?;
    let mut report = Report::new();
    if segments.is_empty() {
        report.error(
            CHECKER,
            "no-segments",
            None,
            None,
            format!("{} contains no WAL segments", dir.display()),
        );
        return Ok(report);
    }
    let mut records: Vec<(Lsn, LogRecord)> = Vec::new();
    let mut expect = segments[0].0;
    let last_idx = segments.len() - 1;
    for (i, (first_lsn, path)) in segments.iter().enumerate() {
        let name = path
            .file_name()
            .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
        if *first_lsn != expect {
            report.error(
                CHECKER,
                "segment-gap",
                None,
                Some(expect),
                format!(
                    "segment {name} starts at LSN {first_lsn} but LSN {expect} \
                     was expected (missing or misnamed segment)"
                ),
            );
            // Linting resynchronizes to where the file actually starts
            // (`expect` is recomputed from `first_lsn` below).
        }
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        let scan = LogReader::scan(&bytes);
        let sealed = i != last_idx;
        if let Some(tail) = scan.torn {
            let last = Lsn(first_lsn.0 + scan.records.len() as u64 - 1);
            if sealed {
                // A sealed segment was complete when the next one was
                // created; a tear here is corruption, not a crash shape.
                report.error(
                    CHECKER,
                    "torn-sealed-segment",
                    None,
                    Some(last),
                    format!(
                        "sealed segment {name} is torn at byte offset {}; \
                         last intact record is LSN {last}",
                        tail.offset
                    ),
                );
            } else {
                let (code, what) = match tail.reason {
                    TornReason::TruncatedLength => {
                        ("torn-frame", "trailing bytes too short for a frame header")
                    }
                    TornReason::TruncatedFrame => ("torn-frame", "frame cut short"),
                    TornReason::Undecodable => ("undecodable-frame", "frame bytes do not decode"),
                };
                report.error(
                    CHECKER,
                    code,
                    None,
                    Some(last),
                    format!(
                        "{what} at byte offset {} of active segment {name}; \
                         last intact record is LSN {last}",
                        tail.offset
                    ),
                );
            }
        }
        if sealed && scan.records.is_empty() {
            report.error(
                CHECKER,
                "empty-sealed-segment",
                None,
                Some(*first_lsn),
                format!("sealed segment {name} holds no complete records"),
            );
        }
        let parsed = scan.records.len() as u64;
        for (j, rec) in scan.records.into_iter().enumerate() {
            records.push((Lsn(first_lsn.0 + j as u64), rec));
        }
        // The next segment must start one past this file's last record.
        expect = Lsn(first_lsn.0 + parsed);
    }
    report.note(format!(
        "{} segments, active segment {}",
        segments.len(),
        segments[last_idx]
            .1
            .file_name()
            .map_or_else(String::new, |n| n.to_string_lossy().into_owned()),
    ));
    report.merge(lint_records(&records, opts));
    Ok(report)
}

/// Lint a WAL at `path`, dispatching on its layout: a directory is linted
/// as a segmented log ([`lint_wal_dir`]), a file as a single-file log
/// ([`lint_wal_file`]).
pub fn lint_wal_path(path: &Path, opts: &WalLintOptions) -> std::io::Result<Report> {
    if path.is_dir() {
        lint_wal_dir(path, opts)
    } else {
        lint_wal_file(path, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obr_wal::ReorgKind;

    fn begin(unit: u64) -> LogRecord {
        LogRecord::ReorgBegin {
            unit: UnitId(unit),
            kind: ReorgKind::Compact,
            base_pages: vec![PageId(1)],
            leaf_pages: vec![PageId(10), PageId(11)],
        }
    }

    fn mv(unit: u64, org: u32, dest: u32, prev: u64) -> LogRecord {
        LogRecord::ReorgMove {
            unit: UnitId(unit),
            org: PageId(org),
            dest: PageId(dest),
            payload: MovePayload::Keys(vec![1, 2, 3]),
            prev_lsn: Lsn(prev),
        }
    }

    fn end(unit: u64) -> LogRecord {
        LogRecord::ReorgEnd {
            unit: UnitId(unit),
            largest_key: 3,
        }
    }

    fn seq(records: Vec<LogRecord>) -> Vec<(Lsn, LogRecord)> {
        records
            .into_iter()
            .enumerate()
            .map(|(i, r)| (Lsn(i as u64 + 1), r))
            .collect()
    }

    #[test]
    fn well_formed_unit_is_clean() {
        let r = lint_records(
            &seq(vec![begin(1), mv(1, 10, 20, 1), mv(1, 11, 20, 2), end(1)]),
            &WalLintOptions::default(),
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn empty_unit_warns_but_is_not_fatal() {
        // BEGIN immediately followed by END: no MOVE/SIDEPTR in between.
        // Recovery forward-completes such units, so this is a warning.
        let r = lint_records(&seq(vec![begin(1), end(1)]), &WalLintOptions::default());
        assert!(
            r.findings.iter().any(|f| f.code == "empty-unit"),
            "expected an empty-unit warning: {r}"
        );
        assert_eq!(r.error_count(), 0, "{r}");
    }

    #[test]
    fn reordered_log_breaks_the_chain() {
        // Swap the two MOVEs: the first now claims prev_lsn=2 at LSN 2.
        let r = lint_records(
            &seq(vec![begin(1), mv(1, 11, 20, 2), mv(1, 10, 20, 1), end(1)]),
            &WalLintOptions::default(),
        );
        assert!(
            r.findings.iter().any(|f| f.code == "broken-prev-chain"),
            "{r}"
        );
    }

    #[test]
    fn full_records_forward_move_is_a_violation() {
        let recs = seq(vec![
            begin(1),
            LogRecord::ReorgMove {
                unit: UnitId(1),
                org: PageId(10),
                dest: PageId(20),
                payload: MovePayload::Records(vec![(1, vec![0xaa])]),
                prev_lsn: Lsn(1),
            },
            end(1),
        ]);
        let r = lint_records(&recs, &WalLintOptions::default());
        assert!(
            r.findings
                .iter()
                .any(|f| f.code == "careful-writing-violation"),
            "{r}"
        );
        let relaxed = lint_records(
            &recs,
            &WalLintOptions {
                allow_full_records: true,
            },
        );
        assert!(relaxed.is_clean(), "{relaxed}");
    }

    #[test]
    fn compensating_reverse_move_is_legal() {
        // Forward MOVE 10 -> 20 with keys, then the §5.2 undo: a full-record
        // MOVE 20 -> 10, then END with LK untouched.
        let r = lint_records(
            &seq(vec![
                begin(1),
                mv(1, 10, 20, 1),
                LogRecord::ReorgMove {
                    unit: UnitId(1),
                    org: PageId(20),
                    dest: PageId(10),
                    payload: MovePayload::Records(vec![(1, vec![0xaa])]),
                    prev_lsn: Lsn(2),
                },
                end(1),
            ]),
            &WalLintOptions::default(),
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn open_unit_at_eof_is_crash_shaped() {
        let r = lint_records(
            &seq(vec![begin(1), mv(1, 10, 20, 1)]),
            &WalLintOptions::default(),
        );
        assert!(
            r.findings.iter().any(|f| f.code == "unit-open-at-eof"),
            "{r}"
        );
        assert_eq!(r.error_count(), 0, "{r}");
    }

    #[test]
    fn checkpoint_must_reference_seen_lsns() {
        use obr_wal::{CheckpointData, ReorgTableSnapshot};
        // LSN 4 is a TxnBegin, not a reorg record, so a snapshot naming it
        // dangles even though it precedes the checkpoint.
        let r = lint_records(
            &seq(vec![
                begin(1),
                mv(1, 10, 20, 1),
                end(1),
                LogRecord::TxnBegin { txn: TxnId(7) },
                LogRecord::Checkpoint {
                    data: CheckpointData {
                        reorg: ReorgTableSnapshot {
                            lk: Some(3),
                            begin_lsn: None,
                            recent_lsn: Some(Lsn(4)),
                        },
                        active_txns: vec![(TxnId(7), Lsn(4))],
                        pass3: None,
                    },
                },
            ]),
            &WalLintOptions::default(),
        );
        assert!(
            r.findings
                .iter()
                .any(|f| f.code == "checkpoint-dangling-lsn"),
            "{r}"
        );
    }
}
