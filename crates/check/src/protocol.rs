//! Interprocedural protocol checker: `obr-cli check --protocol`.
//!
//! Enforces three source-level rules over the whole workspace, using
//! the facts/callgraph layers:
//!
//! * **R1 WAL-before-data** (`wal-unlogged-path`): every call path from
//!   an entry point to a page-mutation primitive must pass a function
//!   that performs (directly or through a callee) a WAL append, or be
//!   audited with `// protocol: no-wal <why>`. Primitives are the
//!   `// protocol: page-mutation` annotated mutators (leaf/node views,
//!   `Page::format`); appends are the `// protocol: wal-append`
//!   annotated `LogManager` entry points. The engine's idiom is
//!   mutate-then-append-then-`set_lsn` under the page latch, so the
//!   rule requires an append *on the path*, not strictly before the
//!   mutation token.
//! * **R2 latch discipline** (`latch-undeclared-edge`,
//!   `latch-self-edge`, `latch-unknown-class`): every static
//!   `(held, acquired)` lock-class pair — including pairs created
//!   interprocedurally via callee summaries — must be declared in
//!   `check/lockorder.toml`'s `may_hold_while_acquiring`. Same-class
//!   nesting is an error unless the class is in the `SELF_EDGE_OK` list
//!   (page latches legitimately couple parent→child). This closes the
//!   PR 3 cross-shard rule statically: holding one `pool.shard.frames`
//!   lock while taking another is a self-edge and flagged.
//! * **R3 publication pairing** (`atomic-relaxed-consume`,
//!   `atomic-relaxed-publication`, `atomic-mixed-publication`,
//!   `atomic-unpaired-acquire`): per named atomic field, Release-family
//!   stores must be consumed by Acquire-family loads and vice versa.
//!   A Relaxed load of a field that has Release stores is exactly the
//!   PR 6 lost-write shape. Only pure `load` calls count as consumes:
//!   RMW read-halves always see the latest value in the field's
//!   modification order, and `compare_exchange` failure orderings are
//!   exempt (the retry path re-reads). A site can be audited with
//!   `// protocol: mixed-ordering <why>` on the line above.
//!
//! ## Scan scope
//!
//! Engine crates only: `crates/{storage,wal,btree,lock,core,txn,baseline}`
//! and the workload layer in `src/`. Infrastructure is excluded —
//! `crates/{check,race,bench,sync,obs}`, `shims/`, `src/bin/`, plus
//! `tests/`, `benches/`, `examples/` and `#[cfg(test)]` modules — so
//! the checker reasons about the engine, not about its own scaffolding
//! or model-build scenarios.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use crate::callgraph::{FnId, Workspace};
use crate::facts::{extract_file, AnnKind, Op, Seg};
use crate::lockorder::load_manifest;
use crate::report::Report;

/// Checker name used in findings.
const CHECKER: &str = "protocol";

/// Classes where same-class nesting is a vetted pattern: page latches
/// couple parent→child during descent and splits, always ordered by
/// tree structure, so `pool.frame.data` may be held while acquiring
/// another `pool.frame.data`. Everything else (notably
/// `pool.shard.frames`, the PR 3 rule) must never self-nest.
const SELF_EDGE_OK: &[&str] = &["pool.frame.data"];

/// Directory names excluded anywhere in the tree.
const SKIP_DIRS: &[&str] = &[
    "target", ".git", ".github", "tests", "benches", "examples", "shims", "bin",
];

/// Path prefixes (relative, slash-normalized) excluded from the scan.
const SKIP_PREFIXES: &[&str] = &[
    "crates/check/",
    "crates/race/",
    "crates/bench/",
    "crates/sync/",
    "crates/obs/",
];

/// Collect the engine source files under `root`.
pub fn scan_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            let rel = rel_path(root, &path);
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel.starts_with(p) || format!("{rel}/").starts_with(p))
            {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            let src = fs::read_to_string(&path)?;
            out.push((rel, src));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Run the full protocol check rooted at `root` (the repo checkout).
/// Reads `check/lockorder.toml` relative to `root` for R2.
pub fn check_protocol(root: &Path) -> io::Result<Report> {
    let files = scan_files(root)?;
    let manifest_path = root.join("check").join("lockorder.toml");
    let mut report = Report::new();
    let manifest = match load_manifest(&manifest_path) {
        Ok(m) => Some(m),
        Err(e) => {
            report.error(
                CHECKER,
                "manifest-unreadable",
                None,
                None,
                format!("cannot load {}: {e}", manifest_path.display()),
            );
            None
        }
    };
    let ws = Workspace::build(files.iter().map(|(p, s)| extract_file(p, s)).collect());
    report.note(format!(
        "protocol: scanned {} files, {} functions",
        ws.files.len(),
        ws.fns.len()
    ));
    check_r1(&ws, &mut report);
    if let Some(m) = &manifest {
        check_r2(&ws, m, &mut report);
    }
    check_r3(&ws, &mut report);
    Ok(report)
}

/// Convenience for tests: run the checker over in-memory sources with
/// an already-loaded manifest.
pub fn check_sources(
    files: &[(&str, &str)],
    manifest: Option<&crate::lockorder::LockOrderManifest>,
) -> Report {
    let ws = Workspace::build(files.iter().map(|(p, s)| extract_file(p, s)).collect());
    let mut report = Report::new();
    check_r1(&ws, &mut report);
    if let Some(m) = manifest {
        check_r2(&ws, m, &mut report);
    }
    check_r3(&ws, &mut report);
    report
}

fn has_ann(ws: &Workspace, id: FnId, kind: AnnKind) -> bool {
    ws.fn_info(id).anns.iter().any(|a| a.kind == kind)
}

/// A function "logs locally" when an append happens in its own body —
/// directly or through any callee — so every path *through* it passes
/// an append.
fn logs_locally(ws: &Workspace, id: FnId) -> bool {
    if has_ann(ws, id, AnnKind::WalAppend) {
        return true;
    }
    ws.fns[id]
        .callees
        .iter()
        .any(|(_, callees)| callees.iter().any(|c| ws.appends[*c]))
}

/// R1: WAL-before-data.
fn check_r1(ws: &Workspace, report: &mut Report) {
    let n = ws.fns.len();
    let seed: Vec<bool> = (0..n)
        .map(|i| has_ann(ws, i, AnnKind::PageMutation))
        .collect();
    let exempt: Vec<bool> = (0..n).map(|i| has_ann(ws, i, AnnKind::NoWal)).collect();
    let logs: Vec<bool> = (0..n).map(|i| logs_locally(ws, i)).collect();

    // bad(f): some path f → ... → mutation primitive has no append and
    // no audit anywhere along it.
    let mut bad = seed.clone();
    loop {
        let mut changed = false;
        for id in 0..n {
            if bad[id] || seed[id] || exempt[id] || logs[id] {
                continue;
            }
            let hit = ws.fns[id]
                .callees
                .iter()
                .any(|(_, callees)| callees.iter().any(|c| bad[*c]));
            if hit {
                bad[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut n_mutating_roots = 0usize;
    for id in 0..n {
        if !bad[id] || seed[id] {
            continue;
        }
        if !ws.callers[id].is_empty() {
            continue; // interior of a chain; the root gets the report
        }
        n_mutating_roots += 1;
        // Reconstruct one offending chain root → primitive.
        let mut chain = vec![id];
        let mut cur = id;
        let mut guard = 0;
        while !seed[cur] && guard < 64 {
            guard += 1;
            let next = ws.fns[cur]
                .callees
                .iter()
                .flat_map(|(_, cs)| cs.iter())
                .copied()
                .find(|c| bad[*c] || seed[*c]);
            match next {
                Some(c) => {
                    chain.push(c);
                    cur = c;
                }
                None => break,
            }
        }
        let path: Vec<String> = chain.iter().map(|c| ws.fn_path(*c)).collect();
        report.error(
            CHECKER,
            "wal-unlogged-path",
            None,
            None,
            format!(
                "{}:{} {}: page mutation reachable with no WAL append on the path: {} \
                 (annotate `// protocol: no-wal <why>` if audited)",
                ws.fn_file(id),
                ws.fn_info(id).line,
                ws.fn_path(id),
                path.join(" -> "),
            ),
        );
    }
    let n_mutators = (0..n).filter(|i| ws.mutates[*i]).count();
    report.note(format!(
        "R1: {} functions reach page mutations, {} unlogged entry points",
        n_mutators, n_mutating_roots
    ));
}

/// R2: latch discipline against the manifest.
fn check_r2(ws: &Workspace, manifest: &crate::lockorder::LockOrderManifest, report: &mut Report) {
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut unknown: BTreeSet<String> = BTreeSet::new();
    let mut n_edges = 0usize;
    for id in 0..ws.fns.len() {
        for e in ws.static_edges(id) {
            n_edges += 1;
            for c in [&e.held, &e.acquired] {
                if !manifest.classes.contains_key(c.as_str()) && unknown.insert(c.clone()) {
                    report.error(
                        CHECKER,
                        "latch-unknown-class",
                        None,
                        None,
                        format!(
                            "{}:{} {}: lock class \"{}\" is not declared in lockorder.toml [classes]",
                            ws.fn_file(id),
                            e.line,
                            ws.fn_path(id),
                            c
                        ),
                    );
                }
            }
            if !seen.insert((e.held.clone(), e.acquired.clone())) {
                continue; // report each ordered pair once
            }
            let via = e
                .via
                .map(|v| format!(" via {}", ws.fn_path(v)))
                .unwrap_or_default();
            if e.held == e.acquired {
                if !SELF_EDGE_OK.contains(&e.held.as_str()) {
                    report.error(
                        CHECKER,
                        "latch-self-edge",
                        None,
                        None,
                        format!(
                            "{}:{} {}: may hold \"{}\" while re-acquiring the same class{} \
                             (one-at-a-time classes must never self-nest)",
                            ws.fn_file(id),
                            e.line,
                            ws.fn_path(id),
                            e.held,
                            via
                        ),
                    );
                }
                continue;
            }
            if !manifest
                .allowed
                .contains(&(e.held.clone(), e.acquired.clone()))
            {
                report.error(
                    CHECKER,
                    "latch-undeclared-edge",
                    None,
                    None,
                    format!(
                        "{}:{} {}: static order \"{}\" -> \"{}\"{} is not vetted in \
                         lockorder.toml may_hold_while_acquiring",
                        ws.fn_file(id),
                        e.line,
                        ws.fn_path(id),
                        e.held,
                        e.acquired,
                        via
                    ),
                );
            }
        }
    }
    let distinct = seen.len();
    let covered = seen
        .iter()
        .filter(|(a, b)| a != b && manifest.allowed.contains(&(a.clone(), b.clone())))
        .count();
    report.note(format!(
        "R2: {} static acquisition sites, {} distinct edges, {} of {} manifest edges exercised statically",
        n_edges,
        distinct,
        covered,
        manifest.allowed.len()
    ));
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Load,
    Store,
}

fn release_ish(o: &str) -> bool {
    matches!(o, "Release" | "AcqRel" | "SeqCst")
}
fn acquire_ish(o: &str) -> bool {
    matches!(o, "Acquire" | "AcqRel" | "SeqCst")
}

/// R3: publication pairing per atomic field.
fn check_r3(ws: &Workspace, report: &mut Report) {
    // key → (role, ordering, file, line, fn path)
    type Site = (Role, String, String, u32, String);
    let mut by_key: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    let mut ambiguous: BTreeSet<String> = BTreeSet::new();

    for id in 0..ws.fns.len() {
        let locals = ws.typed_locals(id);
        let file = ws.fn_file(id).to_string();
        for op in &ws.fn_info(id).ops {
            let a = match op {
                Op::Atomic(a) => a,
                _ => continue,
            };
            if a.orderings.iter().any(|o| o == "Exempt") {
                continue; // site audited with `// protocol: mixed-ordering`
            }
            let field = match a.chain.last() {
                Some(Seg::Field(f)) => f.clone(),
                Some(Seg::Base(b)) if a.chain.len() == 1 => b.clone(),
                _ => continue,
            };
            // Resolve the owning struct: type the chain prefix, else
            // fall back to a globally unique atomic field name.
            let owner = if a.chain.len() > 1 {
                ws.type_of_chain(id, &locals, &a.chain[..a.chain.len() - 1])
                    .filter(|t| ws.struct_has_atomic_field(t, &field))
            } else {
                None
            };
            let owner = owner.or_else(|| match ws.atomic_field_owners.get(&field) {
                Some(owners) if owners.len() == 1 => Some(owners[0].clone()),
                Some(_) => {
                    ambiguous.insert(field.clone());
                    None
                }
                None => None,
            });
            let key = match owner {
                Some(t) => format!("{t}.{field}"),
                None => continue, // not a known atomic field (locals, foreign)
            };
            let fn_path = ws.fn_path(id);
            let sites = by_key.entry(key).or_default();
            let ords = &a.orderings;
            match a.method.as_str() {
                "load" => {
                    if let Some(o) = ords.first() {
                        sites.push((Role::Load, o.clone(), file.clone(), a.line, fn_path.clone()));
                    }
                }
                "store" => {
                    if let Some(o) = ords.first() {
                        sites.push((
                            Role::Store,
                            o.clone(),
                            file.clone(),
                            a.line,
                            fn_path.clone(),
                        ));
                    }
                }
                _ => {
                    // RMWs (`swap`, `fetch_*`, `compare_exchange*`,
                    // `fetch_update`) are stores for pairing purposes.
                    // Their read half always observes the latest value
                    // in the field's modification order regardless of
                    // ordering, so it is *not* a publication consume —
                    // a seqlock writer's `fetch_add(1, Release)` must
                    // not be flagged as a Relaxed-family load. The
                    // first ordering argument is the success/set order
                    // on every RMW method; failure/fetch orders are
                    // exempt.
                    if let Some(o) = ords.first() {
                        sites.push((
                            Role::Store,
                            o.clone(),
                            file.clone(),
                            a.line,
                            fn_path.clone(),
                        ));
                    }
                }
            }
        }
    }

    let mut n_fields = 0usize;
    for (key, sites) in &by_key {
        n_fields += 1;
        let rel_stores: Vec<&Site> = sites
            .iter()
            .filter(|s| s.0 == Role::Store && release_ish(&s.1))
            .collect();
        let weak_stores: Vec<&Site> = sites
            .iter()
            .filter(|s| s.0 == Role::Store && !release_ish(&s.1))
            .collect();
        let acq_loads: Vec<&Site> = sites
            .iter()
            .filter(|s| s.0 == Role::Load && acquire_ish(&s.1))
            .collect();
        let weak_loads: Vec<&Site> = sites
            .iter()
            .filter(|s| s.0 == Role::Load && !acquire_ish(&s.1))
            .collect();

        if !rel_stores.is_empty() && !weak_loads.is_empty() {
            let s = &rel_stores[0];
            for l in &weak_loads {
                report.error(
                    CHECKER,
                    "atomic-relaxed-consume",
                    None,
                    None,
                    format!(
                        "{key}: {} load at {}:{} ({}) consumes a publication released at {}:{} ({}) — \
                         upgrade to Acquire or audit with `// protocol: mixed-ordering <why>`",
                        l.1, l.2, l.3, l.4, s.2, s.3, s.4
                    ),
                );
            }
        }
        if !rel_stores.is_empty() && !weak_stores.is_empty() {
            let s = &weak_stores[0];
            report.error(
                CHECKER,
                "atomic-mixed-publication",
                None,
                None,
                format!(
                    "{key}: mixes Release-family and {} stores (e.g. {}:{} in {}) — \
                     one publication protocol per field",
                    s.1, s.2, s.3, s.4
                ),
            );
        }
        if rel_stores.is_empty() && !weak_stores.is_empty() && !acq_loads.is_empty() {
            let l = &acq_loads[0];
            report.error(
                CHECKER,
                "atomic-relaxed-publication",
                None,
                None,
                format!(
                    "{key}: Acquire load at {}:{} ({}) but every store is Relaxed-family — \
                     nothing is published; upgrade the store or relax the load",
                    l.2, l.3, l.4
                ),
            );
        }
        if sites.iter().all(|s| s.0 != Role::Store) && !acq_loads.is_empty() {
            let l = &acq_loads[0];
            report.warning(
                CHECKER,
                "atomic-unpaired-acquire",
                None,
                None,
                format!(
                    "{key}: Acquire load at {}:{} ({}) with no visible store in the scan scope",
                    l.2, l.3, l.4
                ),
            );
        }
    }
    for f in &ambiguous {
        report.note(format!(
            "R3: atomic field name \"{f}\" is declared by multiple structs; untyped accesses skipped"
        ));
    }
    report.note(format!("R3: {} atomic fields checked", n_fields));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockorder::parse_manifest;

    fn manifest(text: &str) -> crate::lockorder::LockOrderManifest {
        parse_manifest(text).expect("fixture manifest parses")
    }

    const TWO_CLASS_MANIFEST: &str = r#"
[classes]
"class.a" = "outer fixture lock"
"class.b" = "inner fixture lock"

[may_hold_while_acquiring]
"class.a" = ["class.b"]
"#;

    // ---- R1: WAL-before-data ----

    const R1_PRIMS: &str = "
struct Log;
impl Log {
    // protocol: wal-append
    fn append(&self) {}
}
struct Leaf;
impl Leaf {
    // protocol: page-mutation
    fn insert(&mut self) {}
}
";

    #[test]
    fn r1_logged_path_is_clean() {
        let src = format!(
            "{R1_PRIMS}
fn do_insert(log: &Log, leaf: &mut Leaf) {{
    log.append();
    leaf.insert();
}}
"
        );
        let r = check_sources(&[("fix.rs", src.as_str())], None);
        assert!(
            !r.findings.iter().any(|f| f.code == "wal-unlogged-path"),
            "append on the path must satisfy R1: {r}"
        );
    }

    #[test]
    fn r1_unlogged_path_flagged_with_chain() {
        let src = format!(
            "{R1_PRIMS}
fn forgot_logging(leaf: &mut Leaf) {{
    leaf.insert();
}}
"
        );
        let r = check_sources(&[("fix.rs", src.as_str())], None);
        let f = r
            .findings
            .iter()
            .find(|f| f.code == "wal-unlogged-path")
            .expect("unlogged mutation path must be flagged");
        assert!(
            f.detail.contains("fix.rs"),
            "diagnostic names the file: {f:?}"
        );
        assert!(
            f.detail.contains("forgot_logging -> Leaf::insert"),
            "diagnostic shows the call chain: {f:?}"
        );
    }

    #[test]
    fn r1_unlogged_interprocedural_chain_is_reported_at_the_root() {
        let src = format!(
            "{R1_PRIMS}
fn helper(leaf: &mut Leaf) {{
    leaf.insert();
}}
fn entry(leaf: &mut Leaf) {{
    helper(leaf);
}}
"
        );
        let r = check_sources(&[("fix.rs", src.as_str())], None);
        let flagged: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.code == "wal-unlogged-path")
            .collect();
        assert_eq!(flagged.len(), 1, "only the root is reported: {r}");
        assert!(
            flagged[0]
                .detail
                .contains("entry -> helper -> Leaf::insert"),
            "chain runs root to primitive: {:?}",
            flagged[0]
        );
    }

    #[test]
    fn r1_no_wal_audit_clears_the_path() {
        let src = format!(
            "{R1_PRIMS}
// protocol: no-wal fixture bulk loader is made durable by flushing
fn bulk(leaf: &mut Leaf) {{
    leaf.insert();
}}
"
        );
        let r = check_sources(&[("fix.rs", src.as_str())], None);
        assert!(
            !r.findings.iter().any(|f| f.code == "wal-unlogged-path"),
            "audited path must be exempt: {r}"
        );
    }

    // ---- R2: latch discipline ----

    const R2_NEST: &str = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn new() -> S {
        S { a: Mutex::named(0, \"class.a\"), b: Mutex::named(0, \"class.b\") }
    }
    fn nest(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
    }
}
";

    #[test]
    fn r2_vetted_edge_is_clean() {
        let m = manifest(TWO_CLASS_MANIFEST);
        let r = check_sources(&[("fix.rs", R2_NEST)], Some(&m));
        assert!(r.is_clean(), "a->b is vetted: {r}");
    }

    #[test]
    fn r2_undeclared_edge_flagged() {
        // Same manifest without the a->b edge.
        let m = manifest(
            "\n[classes]\n\"class.a\" = \"outer\"\n\"class.b\" = \"inner\"\n\n[may_hold_while_acquiring]\n",
        );
        let r = check_sources(&[("fix.rs", R2_NEST)], Some(&m));
        let f = r
            .findings
            .iter()
            .find(|f| f.code == "latch-undeclared-edge")
            .expect("unvetted nesting must be flagged");
        assert!(
            f.detail.contains("\"class.a\" -> \"class.b\""),
            "diagnostic names the ordered pair: {f:?}"
        );
        assert!(
            f.detail.contains("S::nest"),
            "diagnostic names the function: {f:?}"
        );
    }

    #[test]
    fn r2_interprocedural_edge_via_callee() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn new() -> S {
        S { a: Mutex::named(0, \"class.a\"), b: Mutex::named(0, \"class.b\") }
    }
    fn inner(&self) {
        let h = self.b.lock();
    }
    fn outer(&self) {
        let g = self.a.lock();
        self.inner();
    }
}
";
        let m = manifest(
            "\n[classes]\n\"class.a\" = \"outer\"\n\"class.b\" = \"inner\"\n\n[may_hold_while_acquiring]\n",
        );
        let r = check_sources(&[("fix.rs", src)], Some(&m));
        let f = r
            .findings
            .iter()
            .find(|f| f.code == "latch-undeclared-edge")
            .expect("edge created through a callee must be flagged");
        assert!(
            f.detail.contains("via S::inner"),
            "diagnostic names the callee: {f:?}"
        );
    }

    #[test]
    fn r2_self_edge_flagged_unless_whitelisted() {
        let src = "
struct S { frames: Mutex<u32> }
impl S {
    fn new() -> S { S { frames: Mutex::named(0, \"pool.shard.frames\") } }
    fn double(&self) {
        let g = self.frames.lock();
        let h = self.frames.lock();
    }
}
";
        let m = manifest(
            "\n[classes]\n\"pool.shard.frames\" = \"shard table\"\n\n[may_hold_while_acquiring]\n",
        );
        let r = check_sources(&[("fix.rs", src)], Some(&m));
        assert!(
            r.findings.iter().any(|f| f.code == "latch-self-edge"),
            "the PR 3 cross-shard shape must be flagged: {r}"
        );
        // The same shape on the vetted page-latch class passes.
        let src_ok = src.replace("pool.shard.frames", "pool.frame.data");
        let m_ok = manifest(
            "\n[classes]\n\"pool.frame.data\" = \"page latch\"\n\n[may_hold_while_acquiring]\n",
        );
        let r_ok = check_sources(&[("fix.rs", src_ok.as_str())], Some(&m_ok));
        assert!(
            !r_ok.findings.iter().any(|f| f.code == "latch-self-edge"),
            "page-latch coupling is vetted: {r_ok}"
        );
    }

    #[test]
    fn r2_unknown_class_flagged() {
        let src = "
struct S { x: Mutex<u32> }
impl S {
    fn new() -> S { S { x: Mutex::named(0, \"not.in.manifest\") } }
    fn outer(&self) {
        let g = self.x.lock();
        self.inner();
    }
    fn inner(&self) {
        let h = self.x.lock();
    }
}
";
        let m = manifest("\n[classes]\n\"class.a\" = \"a\"\n\n[may_hold_while_acquiring]\n");
        let r = check_sources(&[("fix.rs", src)], Some(&m));
        assert!(
            r.findings
                .iter()
                .any(|f| f.code == "latch-unknown-class" && f.detail.contains("not.in.manifest")),
            "undeclared class must be flagged: {r}"
        );
    }

    // ---- R3: publication pairing ----

    const R3_STRUCT: &str = "
struct P { ready: AtomicBool }
";

    #[test]
    fn r3_release_acquire_pairing_is_clean() {
        let src = format!(
            "{R3_STRUCT}
impl P {{
    fn publish(&self) {{ self.ready.store(true, Ordering::Release); }}
    fn consume(&self) -> bool {{ self.ready.load(Ordering::Acquire) }}
}}
"
        );
        let r = check_sources(&[("fix.rs", src.as_str())], None);
        assert!(
            r.is_clean(),
            "Release/Acquire pairing is the vetted shape: {r}"
        );
    }

    #[test]
    fn r3_relaxed_consume_flagged() {
        let src = format!(
            "{R3_STRUCT}
impl P {{
    fn publish(&self) {{ self.ready.store(true, Ordering::Release); }}
    fn consume(&self) -> bool {{ self.ready.load(Ordering::Relaxed) }}
}}
"
        );
        let r = check_sources(&[("fix.rs", src.as_str())], None);
        let f = r
            .findings
            .iter()
            .find(|f| f.code == "atomic-relaxed-consume")
            .expect("the PR 6 lost-write shape must be flagged");
        assert!(
            f.detail.contains("P.ready"),
            "diagnostic names the field: {f:?}"
        );
        assert!(
            f.detail.contains("P::consume"),
            "diagnostic names the load site: {f:?}"
        );
    }

    #[test]
    fn r3_mixed_ordering_audit_clears_the_site() {
        let src = format!(
            "{R3_STRUCT}
impl P {{
    fn publish(&self) {{ self.ready.store(true, Ordering::Release); }}
    fn consume(&self) -> bool {{
        // protocol: mixed-ordering fixture hint only, re-checked under the lock
        self.ready.load(Ordering::Relaxed)
    }}
}}
"
        );
        let r = check_sources(&[("fix.rs", src.as_str())], None);
        assert!(
            !r.findings
                .iter()
                .any(|f| f.code == "atomic-relaxed-consume"),
            "audited site must be exempt: {r}"
        );
    }

    #[test]
    fn r3_rmw_release_writer_is_not_a_consume() {
        // Seqlock writer: fetch_add(Release) publishes; only the pure
        // Acquire load consumes. The RMW read-half must not be flagged.
        let src = "
struct E { epoch: AtomicU64 }
impl E {
    fn enter(&self) { self.epoch.fetch_add(1, Ordering::Release); }
    fn stable(&self) -> u64 { self.epoch.load(Ordering::Acquire) }
}
";
        let r = check_sources(&[("fix.rs", src)], None);
        assert!(r.is_clean(), "seqlock writer RMW is not a consume: {r}");
    }

    #[test]
    fn r3_relaxed_publication_flagged() {
        let src = format!(
            "{R3_STRUCT}
impl P {{
    fn publish(&self) {{ self.ready.store(true, Ordering::Relaxed); }}
    fn consume(&self) -> bool {{ self.ready.load(Ordering::Acquire) }}
}}
"
        );
        let r = check_sources(&[("fix.rs", src.as_str())], None);
        assert!(
            r.findings
                .iter()
                .any(|f| f.code == "atomic-relaxed-publication"),
            "Acquire load with only Relaxed stores publishes nothing: {r}"
        );
    }
}
