//! Static analysis and invariant verification for the on-line
//! reorganization system: checks that prove structural and protocol
//! invariants *without running a workload*.
//!
//! Three checkers, one per invariant family of the paper:
//!
//! - [`fsck`] — tree fsck. Walks a page file (or a live buffer pool) and
//!   verifies key ordering within and across leaves, side-pointer chain
//!   consistency (§4.3), parent/child key-range agreement under the
//!   router's clamping semantics, free-space-map agreement, and the
//!   per-base-page fill accounting that Pass 1's sparseness test (§4.1)
//!   depends on.
//! - [`lockcheck`] — lock-protocol model checker. Compares
//!   [`obr_lock::LockMode`] against a declarative transcription of the
//!   paper's Table 1 (§4), verifies the RX *forgone* conflict action and
//!   RS instant duration against a live manager, and proves the
//!   acquisition-order graph of every locking protocol acyclic
//!   (deadlock-freedom among protocol followers).
//! - [`wal_lint`] — WAL linter. Replays a log read-only and flags
//!   careful-writing violations (§5.1), broken unit prev-LSN chains,
//!   units that can neither be completed forward nor were finished
//!   (§5.2), and checkpoint snapshots that reference the future (§5.3).
//! - [`crashcheck`] — exhaustive crash-consistency checker. Runs scripted
//!   workloads against a journaling disk, enumerates *every* crash state
//!   (each WAL record boundary × each point in the careful-writing write
//!   order, plus torn tails), and proves Forward Recovery (§5.1) drives
//!   each one back to a committed, fsck-clean state.
//! - [`srclint`] — concurrency source lint. Textual rules keeping the
//!   hot paths analyzable by the interleaving explorer: justified
//!   `Relaxed` orderings, no raw sync primitives bypassing the
//!   `obr-sync` facade, no locking inside `unsafe`, documented unsafe.
//! - [`lockorder`] — lock-acquisition-order manifest checker. Diffs the
//!   lock-order edges observed by the `obr-race` explorer against the
//!   committed manifest `check/lockorder.toml` and proves the declared
//!   graph acyclic.
//! - [`protocol`] — interprocedural protocol checker. Builds per-function
//!   fact summaries over a hand-rolled lexer ([`lexer`], [`facts`]) and a
//!   whole-workspace call graph ([`callgraph`]), then proves three rules
//!   on all static paths: WAL-before-data (R1), latch discipline against
//!   the vetted manifest (R2), and atomic publication pairing (R3).
//!
//! All checkers report through [`Report`]; a clean report has no findings
//! of any severity. The `obr-cli check` subcommand and the repository's CI
//! run them; `debug_assertions` builds additionally run targeted local
//! checks inside SMO and reorganization-unit paths.

pub mod callgraph;
pub mod crashcheck;
pub mod facts;
pub mod fsck;
pub mod lexer;
pub mod lockcheck;
pub mod lockorder;
pub mod protocol;
pub mod report;
pub mod srclint;
pub mod wal_lint;

pub use crashcheck::{run_crash_check, CrashCheckOptions, CrashCheckOutcome, CrashCheckStats};
pub use fsck::{
    fsck_db, fsck_file, fsck_source, BaseFill, FileSource, FsckOptions, FsckResult, FsckStats,
    PageSource, PoolSource,
};
pub use lockcheck::{check_acquisition_order, check_compat_matrix, check_lock_protocol};
pub use lockorder::{
    check_lock_order, check_lock_order_file, load_manifest, parse_manifest, LockOrderManifest,
};
pub use protocol::{check_protocol, check_sources, scan_files};
pub use report::{Finding, Report, Severity};
pub use srclint::{check_whitelist, lint_sources, FACADE_EXEMPT, RELAXED_OK};
pub use wal_lint::{
    lint_log, lint_records, lint_wal_dir, lint_wal_file, lint_wal_path, WalLintOptions,
};

use obr_core::Database;

/// Run every checker that applies to a live database: tree fsck over the
/// buffer pool, WAL lint over the attached log (if any), and the
/// lock-protocol model check. Returns the merged report.
pub fn check_database(db: &Database) -> Report {
    let mut report = fsck_db(db, &FsckOptions::default()).report;
    report.merge(lint_log(db.log(), &WalLintOptions::default()));
    report.merge(check_lock_protocol());
    report
}
