//! Whole-workspace call graph and dataflow summaries for the protocol
//! checker.
//!
//! Takes the per-file facts from [`crate::facts`] and computes:
//!
//! * a poor-man's type resolution (struct field types, function return
//!   types, local `let x = call()` bindings, wrapper stripping) good
//!   enough to resolve most method calls in this codebase;
//! * per-function summaries by fixpoint over the call graph:
//!   `may_acquire` (lock classes a call may take, transitively),
//!   `appends` (reaches a `// protocol: wal-append` primitive),
//!   `mutates` (reaches a `// protocol: page-mutation` primitive);
//! * static lock-order edges: a linear replay of each function's op
//!   stream tracking lexically held guards, emitting `(held, acquired)`
//!   pairs for both direct acquisitions and calls (via the callee's
//!   `may_acquire` summary). Calls returning raw lock guards that are
//!   let-bound extend the callee's classes over the binding scope.
//!
//! Unresolvable calls (untyped receivers, foreign crates) resolve to
//! nothing: the analysis under-approximates the call graph. That can
//! miss edges but not invent them, which is the right bias for a
//! checker whose manifest diffs are vetted by a human.

use crate::facts::{AnnKind, FileFacts, FnInfo, Op, RawCall, Recv, Seg, TyperHint};
use std::collections::{BTreeMap, BTreeSet};

/// Flattened function id: index into [`Workspace::fns`].
pub type FnId = usize;

/// A static lock-order edge with provenance.
#[derive(Debug, Clone)]
pub struct StaticEdge {
    /// Class already held.
    pub held: String,
    /// Class being acquired while `held` is held.
    pub acquired: String,
    /// Function the edge was observed in.
    pub in_fn: FnId,
    /// Line of the acquiring op.
    pub line: u32,
    /// Callee whose `may_acquire` produced the edge, if indirect.
    pub via: Option<FnId>,
}

/// One function's resolved view.
pub struct FnNode {
    /// File index of the function (into [`Workspace::files`]).
    pub file: usize,
    /// Function index within that file's facts.
    pub fi: usize,
    /// Resolved callees per call op (op index → callee ids).
    pub callees: Vec<(usize, Vec<FnId>)>,
    /// Classes acquired directly in the body.
    pub direct_acquires: BTreeSet<String>,
}

/// The whole-workspace index plus computed summaries.
pub struct Workspace {
    /// Per-file extracted facts, in scan order.
    pub files: Vec<FileFacts>,
    /// Flattened function table.
    pub fns: Vec<FnNode>,
    /// `(type name, method name)` → function ids.
    by_type_method: BTreeMap<(String, String), Vec<FnId>>,
    /// trait name → implementing type names.
    trait_impls: BTreeMap<String, Vec<String>>,
    /// free function name → ids (no impl type).
    free_by_name: BTreeMap<String, Vec<FnId>>,
    /// struct name → field name → (core type, is_atomic).
    struct_fields: BTreeMap<String, BTreeMap<String, (Option<String>, bool)>>,
    /// atomic field name → owning struct names.
    pub atomic_field_owners: BTreeMap<String, Vec<String>>,
    /// lock-class bindings: per-file name → class, and global unique.
    file_classes: Vec<BTreeMap<String, String>>,
    global_classes: BTreeMap<String, Option<String>>,
    /// Lock classes each function may acquire, transitively.
    pub may_acquire: Vec<BTreeSet<String>>,
    /// Reaches a `wal-append` primitive, transitively.
    pub appends: Vec<bool>,
    /// Reaches a `page-mutation` primitive, transitively.
    pub mutates: Vec<bool>,
    /// In-degree over resolved call edges.
    pub callers: Vec<Vec<FnId>>,
}

impl Workspace {
    /// Index the files, resolve every call, and compute summaries.
    pub fn build(files: Vec<FileFacts>) -> Workspace {
        let mut fns = Vec::new();
        let mut by_type_method: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut trait_impls: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut struct_fields: BTreeMap<String, BTreeMap<String, (Option<String>, bool)>> =
            BTreeMap::new();
        let mut atomic_field_owners: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut file_classes = Vec::new();
        let mut global_classes: BTreeMap<String, Option<String>> = BTreeMap::new();

        for (file_idx, f) in files.iter().enumerate() {
            let mut classes = BTreeMap::new();
            for c in &f.classes {
                classes.insert(c.name.clone(), c.class.clone());
                global_classes
                    .entry(c.name.clone())
                    .and_modify(|v| {
                        if v.as_deref() != Some(c.class.as_str()) {
                            *v = None; // ambiguous across files
                        }
                    })
                    .or_insert_with(|| Some(c.class.clone()));
            }
            file_classes.push(classes);

            for s in &f.structs {
                let entry = struct_fields.entry(s.name.clone()).or_default();
                for fld in &s.fields {
                    entry.insert(fld.name.clone(), (fld.type_core.clone(), fld.is_atomic));
                    if fld.is_atomic {
                        let owners = atomic_field_owners.entry(fld.name.clone()).or_default();
                        if !owners.contains(&s.name) {
                            owners.push(s.name.clone());
                        }
                    }
                }
            }

            for (fi, func) in f.fns.iter().enumerate() {
                let id: FnId = fns.len();
                fns.push(FnNode {
                    file: file_idx,
                    fi,
                    callees: Vec::new(),
                    direct_acquires: BTreeSet::new(),
                });
                if let Some(t) = &func.impl_type {
                    by_type_method
                        .entry((t.clone(), func.name.clone()))
                        .or_default()
                        .push(id);
                    if let Some(tr) = &func.trait_name {
                        if tr != t {
                            let impls = trait_impls.entry(tr.clone()).or_default();
                            if !impls.contains(t) {
                                impls.push(t.clone());
                            }
                        }
                    }
                } else {
                    free_by_name.entry(func.name.clone()).or_default().push(id);
                }
            }
        }

        let mut ws = Workspace {
            files,
            fns,
            by_type_method,
            trait_impls,
            free_by_name,
            struct_fields,
            atomic_field_owners,
            file_classes,
            global_classes,
            may_acquire: Vec::new(),
            appends: Vec::new(),
            mutates: Vec::new(),
            callers: Vec::new(),
        };
        ws.resolve_calls();
        ws.summarize();
        ws
    }

    /// The function's extracted facts.
    pub fn fn_info(&self, id: FnId) -> &FnInfo {
        let n = &self.fns[id];
        &self.files[n.file].fns[n.fi]
    }

    /// Display path `Type::name` (or bare `name`) for diagnostics.
    pub fn fn_path(&self, id: FnId) -> String {
        let n = &self.fns[id];
        let f = &self.files[n.file].fns[n.fi];
        match &f.impl_type {
            Some(t) => format!("{}::{}", t, f.name),
            None => f.name.clone(),
        }
    }

    /// Relative file path the function lives in.
    pub fn fn_file(&self, id: FnId) -> &str {
        &self.files[self.fns[id].file].path
    }

    /// Resolve a lock class for a syntactic field/local name, preferring
    /// the accessing file's bindings.
    fn class_for(&self, file: usize, name: &str) -> Option<String> {
        if let Some(c) = self.file_classes[file].get(name) {
            return Some(c.clone());
        }
        self.global_classes.get(name).and_then(|v| v.clone())
    }

    /// Methods treated as type-preserving when unresolved.
    fn is_identity_method(name: &str) -> bool {
        matches!(
            name,
            "unwrap"
                | "expect"
                | "clone"
                | "as_ref"
                | "as_mut"
                | "borrow"
                | "borrow_mut"
                | "lock"
                | "read"
                | "write"
                | "try_lock"
                | "try_read"
                | "try_write"
        )
    }

    /// Return type of `type_name::method`, following trait impls.
    fn method_ret(&self, type_name: &str, method: &str) -> Option<String> {
        for id in self.lookup_methods(type_name, method) {
            let f = self.fn_info(id);
            if let Some(r) = &f.ret {
                if r == "Self" {
                    return f.impl_type.clone();
                }
                return Some(r.clone());
            }
        }
        None
    }

    /// All function ids for `type_name::method`, including trait-impl
    /// fan-out when `type_name` is a trait.
    fn lookup_methods(&self, type_name: &str, method: &str) -> Vec<FnId> {
        let mut out = Vec::new();
        if let Some(ids) = self
            .by_type_method
            .get(&(type_name.to_string(), method.to_string()))
        {
            out.extend_from_slice(ids);
        }
        if let Some(impls) = self.trait_impls.get(type_name) {
            for ty in impls {
                if let Some(ids) = self.by_type_method.get(&(ty.clone(), method.to_string())) {
                    for id in ids {
                        if !out.contains(id) {
                            out.push(*id);
                        }
                    }
                }
            }
        }
        out
    }

    fn field_type(&self, type_name: &str, field: &str) -> Option<String> {
        self.struct_fields.get(type_name)?.get(field)?.0.clone()
    }

    /// True when `type_name` declares `field` with an `Atomic*` type.
    pub fn struct_has_atomic_field(&self, type_name: &str, field: &str) -> bool {
        self.struct_fields
            .get(type_name)
            .and_then(|m| m.get(field))
            .map(|(_, a)| *a)
            .unwrap_or(false)
    }

    /// Type a receiver chain inside `func` (which lives in `file`).
    /// `locals` maps already-typed let bindings.
    fn chain_type(
        &self,
        func: &FnInfo,
        locals: &BTreeMap<String, String>,
        segs: &[Seg],
    ) -> Option<String> {
        let mut cur: String = match segs.first()? {
            Seg::Base(b) if b == "self" => func.impl_type.clone()?,
            Seg::Base(b) => {
                if let Some(t) = locals.get(b) {
                    t.clone()
                } else if let Some((_, t)) = func.params.iter().find(|(n, _)| n == b) {
                    t.clone()?
                } else if self.struct_fields.contains_key(b) {
                    b.clone()
                } else {
                    return None;
                }
            }
            _ => return None,
        };
        for seg in &segs[1..] {
            cur = match seg {
                Seg::Base(_) => return None,
                Seg::Field(f) => self.field_type(&cur, f)?,
                Seg::Method(m) => match self.method_ret(&cur, m) {
                    Some(t) => {
                        if t == "Self" {
                            cur
                        } else {
                            t
                        }
                    }
                    None if Self::is_identity_method(m) => cur,
                    None => return None,
                },
            };
        }
        Some(cur)
    }

    /// Resolve one call to workspace function ids.
    fn resolve_call(
        &self,
        file: usize,
        func: &FnInfo,
        locals: &BTreeMap<String, String>,
        call: &RawCall,
    ) -> Vec<FnId> {
        match &call.recv {
            Recv::None => {
                // Same-file free fn first, then globally unique.
                if let Some(ids) = self.free_by_name.get(&call.name) {
                    let local: Vec<FnId> = ids
                        .iter()
                        .copied()
                        .filter(|id| self.fns[*id].file == file)
                        .collect();
                    if !local.is_empty() {
                        return local;
                    }
                    if ids.len() == 1 {
                        return ids.clone();
                    }
                }
                Vec::new()
            }
            Recv::Path(p) => {
                let ty = if p == "Self" {
                    match &func.impl_type {
                        Some(t) => t.clone(),
                        None => return Vec::new(),
                    }
                } else {
                    p.clone()
                };
                self.lookup_methods(&ty, &call.name)
            }
            Recv::Chain(segs) => {
                // `self.method()` with a one-segment chain.
                if segs.len() == 1 {
                    if let Seg::Base(b) = &segs[0] {
                        if b == "self" {
                            if let Some(t) = &func.impl_type {
                                let ids = self.lookup_methods(t, &call.name);
                                if !ids.is_empty() {
                                    return ids;
                                }
                                if let Some(tr) = &func.trait_name {
                                    return self.lookup_methods(tr, &call.name);
                                }
                                return Vec::new();
                            }
                        }
                    }
                }
                match self.chain_type(func, locals, segs) {
                    Some(t) => self.lookup_methods(&t, &call.name),
                    None => Vec::new(),
                }
            }
        }
    }

    /// Compute each function's local type environment from its
    /// `TyperHint`s (in order), then resolve every call op.
    fn resolve_calls(&mut self) {
        let mut resolved: Vec<Vec<(usize, Vec<FnId>)>> = Vec::with_capacity(self.fns.len());
        let mut direct: Vec<BTreeSet<String>> = Vec::with_capacity(self.fns.len());
        for id in 0..self.fns.len() {
            let file = self.fns[id].file;
            let func = self.fn_info(id);
            let locals = self.type_locals(file, func);
            let mut callees = Vec::new();
            let mut acq = BTreeSet::new();
            for (op_idx, op) in func.ops.iter().enumerate() {
                match op {
                    Op::Call { call, .. } => {
                        let ids = self.resolve_call(file, func, &locals, call);
                        callees.push((op_idx, ids));
                    }
                    Op::Acquire { class, .. } => {
                        acq.insert(class.clone());
                    }
                    _ => {}
                }
            }
            resolved.push(callees);
            direct.push(acq);
        }
        let mut callers: Vec<Vec<FnId>> = vec![Vec::new(); self.fns.len()];
        for (id, callees) in resolved.iter().enumerate() {
            for (_, ids) in callees {
                for c in ids {
                    if !callers[*c].contains(&id) {
                        callers[*c].push(id);
                    }
                }
            }
        }
        for (id, (callees, acq)) in resolved.into_iter().zip(direct).enumerate() {
            self.fns[id].callees = callees;
            self.fns[id].direct_acquires = acq;
        }
        self.callers = callers;
    }

    fn type_locals(&self, file: usize, func: &FnInfo) -> BTreeMap<String, String> {
        let mut locals: BTreeMap<String, String> = BTreeMap::new();
        for (name, hint) in &func.locals {
            let t = match hint {
                TyperHint::Explicit(t) => Some(t.clone()),
                TyperHint::StructLit(t) => Some(t.clone()),
                TyperHint::FromCall(call) => {
                    let ids = self.resolve_call(file, func, &locals, call);
                    let mut ty = None;
                    for id in ids {
                        let f = self.fn_info(id);
                        if let Some(r) = &f.ret {
                            ty = if r == "Self" {
                                f.impl_type.clone()
                            } else {
                                Some(r.clone())
                            };
                            break;
                        }
                    }
                    // `let g = x.write()` on an unresolvable lock:
                    // identity typing via the chain.
                    if ty.is_none() {
                        if let Recv::Chain(segs) = &call.recv {
                            if Self::is_identity_method(&call.name) {
                                ty = self.chain_type(func, &locals, segs);
                            }
                        }
                    }
                    ty
                }
            };
            if let Some(t) = t {
                locals.insert(name.clone(), t);
            }
        }
        locals
    }

    /// Fixpoint summaries: may_acquire, appends, mutates.
    fn summarize(&mut self) {
        let n = self.fns.len();
        let mut may: Vec<BTreeSet<String>> = (0..n)
            .map(|i| self.fns[i].direct_acquires.clone())
            .collect();
        let mut appends: Vec<bool> = (0..n)
            .map(|i| {
                self.fn_info(i)
                    .anns
                    .iter()
                    .any(|a| a.kind == AnnKind::WalAppend)
            })
            .collect();
        let mut mutates: Vec<bool> = (0..n)
            .map(|i| {
                self.fn_info(i)
                    .anns
                    .iter()
                    .any(|a| a.kind == AnnKind::PageMutation)
            })
            .collect();

        loop {
            let mut changed = false;
            for id in 0..n {
                let mut acc = may[id].clone();
                let mut app = appends[id];
                let mut mu = mutates[id];
                for (_, callees) in &self.fns[id].callees {
                    for c in callees {
                        for cl in &may[*c] {
                            if acc.insert(cl.clone()) {
                                changed = true;
                            }
                        }
                        if appends[*c] && !app {
                            app = true;
                            changed = true;
                        }
                        if mutates[*c] && !mu {
                            mu = true;
                            changed = true;
                        }
                    }
                }
                may[id] = acc;
                appends[id] = app;
                mutates[id] = mu;
            }
            if !changed {
                break;
            }
        }
        self.may_acquire = may;
        self.appends = appends;
        self.mutates = mutates;
    }

    /// Types of the function's let-bound locals, for the rule passes.
    pub fn typed_locals(&self, id: FnId) -> BTreeMap<String, String> {
        self.type_locals(self.fns[id].file, self.fn_info(id))
    }

    /// Type a receiver chain inside function `id` with `locals` from
    /// [`Workspace::typed_locals`].
    pub fn type_of_chain(
        &self,
        id: FnId,
        locals: &BTreeMap<String, String>,
        segs: &[Seg],
    ) -> Option<String> {
        self.chain_type(self.fn_info(id), locals, segs)
    }

    /// Replay one function's op stream and emit static lock-order
    /// edges, consulting callee summaries for indirect acquisitions.
    pub fn static_edges(&self, id: FnId) -> Vec<StaticEdge> {
        let file = self.fns[id].file;
        let func = self.fn_info(id);
        let callee_map: BTreeMap<usize, &Vec<FnId>> =
            self.fns[id].callees.iter().map(|(i, v)| (*i, v)).collect();
        let mut held: Vec<(Option<u32>, String)> = Vec::new();
        let mut edges = Vec::new();
        for (op_idx, op) in func.ops.iter().enumerate() {
            match op {
                Op::Acquire { class, scope, line } => {
                    for (_, h) in &held {
                        edges.push(StaticEdge {
                            held: h.clone(),
                            acquired: class.clone(),
                            in_fn: id,
                            line: *line,
                            via: None,
                        });
                    }
                    held.push((Some(*scope), class.clone()));
                }
                Op::Call { call, scope, line } => {
                    // A lock method on a class-resolvable *global* field
                    // that facts could not resolve file-locally.
                    if let Recv::Chain(segs) = &call.recv {
                        if matches!(
                            call.name.as_str(),
                            "lock" | "read" | "write" | "try_lock" | "try_read" | "try_write"
                        ) {
                            let fname = match segs.last() {
                                Some(Seg::Field(f)) => Some(f.as_str()),
                                Some(Seg::Base(b)) if segs.len() == 1 => Some(b.as_str()),
                                _ => None,
                            };
                            if let Some(fname) = fname {
                                if let Some(class) = self.class_for(file, fname) {
                                    for (_, h) in &held {
                                        edges.push(StaticEdge {
                                            held: h.clone(),
                                            acquired: class.clone(),
                                            in_fn: id,
                                            line: *line,
                                            via: None,
                                        });
                                    }
                                    held.push((*scope, class));
                                    continue;
                                }
                            }
                        }
                    }
                    if let Some(callees) = callee_map.get(&op_idx) {
                        for c in *callees {
                            for acq in &self.may_acquire[*c] {
                                // Same-class pairs are kept: re-entry
                                // through a callee is a self-edge the
                                // rule pass decides about.
                                for (_, h) in &held {
                                    edges.push(StaticEdge {
                                        held: h.clone(),
                                        acquired: acq.clone(),
                                        in_fn: id,
                                        line: *line,
                                        via: Some(*c),
                                    });
                                }
                            }
                            // Guard-returning call bound by `let`: the
                            // callee's classes stay held for the scope.
                            if self.fn_info(*c).returns_lock_guard {
                                if let Some(s) = scope {
                                    for acq in &self.may_acquire[*c] {
                                        held.push((Some(*s), acq.clone()));
                                    }
                                }
                            }
                        }
                    }
                }
                Op::EndScope { scope } => {
                    held.retain(|(s, _)| *s != Some(*scope));
                }
                Op::Atomic(_) => {}
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract_file;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(files.iter().map(|(p, s)| extract_file(p, s)).collect())
    }

    #[test]
    fn resolves_self_and_typed_chains() {
        let w = ws(&[(
            "a.rs",
            r#"
            pub struct Pool { log: Arc<LogManager> }
            pub struct LogManager { x: u32 }
            impl LogManager {
                // protocol: wal-append
                pub fn append(&self) -> u64 { 0 }
            }
            impl Pool {
                pub fn touch(&self) { self.log.append(); }
            }
            "#,
        )]);
        let touch = (0..w.fns.len())
            .find(|i| w.fn_info(*i).name == "touch")
            .unwrap();
        assert!(w.appends[touch], "touch should transitively append");
    }

    #[test]
    fn guard_returning_call_extends_held_set() {
        let w = ws(&[(
            "a.rs",
            r#"
            pub struct Frame { data: RwLock<Page> }
            pub struct Page { b: u8 }
            pub struct FrameGuard { frame: Arc<Frame> }
            impl Frame {
                fn new() -> Frame { Frame { data: RwLock::named(Page { b: 0 }, "pool.frame.data") } }
            }
            impl FrameGuard {
                pub fn write(&self) -> RwLockWriteGuard<'_, Page> { self.frame.data.write() }
            }
            pub struct Wal { mem: Mutex<u8> }
            impl Wal {
                fn new() -> Wal { Wal { mem: Mutex::named(0, "wal.mem") } }
                pub fn append(&self) { let g = self.mem.lock(); }
            }
            pub struct T { wal: Wal }
            impl T {
                pub fn step(&self, g: FrameGuard) {
                    let page = g.write();
                    self.wal.append();
                }
            }
            "#,
        )]);
        let step = (0..w.fns.len())
            .find(|i| w.fn_info(*i).name == "step")
            .unwrap();
        let edges = w.static_edges(step);
        assert!(
            edges
                .iter()
                .any(|e| e.held == "pool.frame.data" && e.acquired == "wal.mem"),
            "edges: {:?}",
            edges
                .iter()
                .map(|e| (e.held.clone(), e.acquired.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn direct_nesting_edge() {
        let w = ws(&[(
            "a.rs",
            r#"
            pub struct S { a: Mutex<u8>, b: Mutex<u8> }
            impl S {
                fn new() -> S {
                    S { a: Mutex::named(0, "s.a"), b: Mutex::named(0, "s.b") }
                }
                pub fn nest(&self) {
                    let g = self.a.lock();
                    let h = self.b.lock();
                }
            }
            "#,
        )]);
        let nest = (0..w.fns.len())
            .find(|i| w.fn_info(*i).name == "nest")
            .unwrap();
        let edges = w.static_edges(nest);
        assert!(edges.iter().any(|e| e.held == "s.a" && e.acquired == "s.b"));
        assert!(!edges.iter().any(|e| e.held == "s.b"));
    }

    #[test]
    fn interprocedural_edge_via_callee() {
        let w = ws(&[(
            "a.rs",
            r#"
            pub struct S { a: Mutex<u8>, b: Mutex<u8> }
            impl S {
                fn new() -> S { S { a: Mutex::named(0, "s.a"), b: Mutex::named(0, "s.b") } }
                fn inner(&self) { let g = self.b.lock(); }
                pub fn outer(&self) {
                    let g = self.a.lock();
                    self.inner();
                }
            }
            "#,
        )]);
        let outer = (0..w.fns.len())
            .find(|i| w.fn_info(*i).name == "outer")
            .unwrap();
        let edges = w.static_edges(outer);
        assert!(edges
            .iter()
            .any(|e| e.held == "s.a" && e.acquired == "s.b" && e.via.is_some()));
    }

    #[test]
    fn trait_object_fanout() {
        let w = ws(&[(
            "a.rs",
            r#"
            pub trait Disk { fn write_page(&self); }
            pub struct MemDisk { l: Mutex<u8> }
            impl MemDisk { fn new() -> MemDisk { MemDisk { l: Mutex::named(0, "disk.pages") } } }
            impl Disk for MemDisk {
                fn write_page(&self) { let g = self.l.lock(); }
            }
            pub struct Pool { disk: Arc<dyn Disk> }
            impl Pool {
                pub fn flush(&self) { self.disk.write_page(); }
            }
            "#,
        )]);
        let flush = (0..w.fns.len())
            .find(|i| w.fn_info(*i).name == "flush")
            .unwrap();
        assert!(w.may_acquire[flush].contains("disk.pages"));
    }
}
