//! Concurrency source lint: lexical rules that keep the engine's hot
//! paths analyzable by the interleaving explorer.
//!
//! Four rules, all reported through [`crate::Report`] with checker name
//! `"srclint"`:
//!
//! 1. **`relaxed-unjustified`** — every `Ordering::Relaxed` use must
//!    either sit in a file whitelisted by [`RELAXED_OK`] (with a recorded
//!    reason) or carry a justification comment of the form
//!    `// relaxed: <why this cannot order anything that matters>` on the
//!    same line or within the five preceding lines.
//! 2. **`facade-bypass`** — engine crates must take their locks and
//!    atomics from the `obr-sync` facade; importing
//!    `std::sync::{Mutex,RwLock,Condvar}`, `std::sync::atomic`, or
//!    `parking_lot` directly creates sync operations the model scheduler
//!    cannot see. Paths in [`FACADE_EXEMPT`] (the facade itself, shims,
//!    tooling) are excluded.
//! 3. **`lock-in-unsafe`** — `.lock()` calls inside `unsafe` blocks:
//!    a blocking acquisition in an unsafe region couples lock-order
//!    hazards with memory-safety obligations; hoist the acquisition out.
//! 4. **`undocumented-unsafe`** — any `unsafe` token without a
//!    `SAFETY:` comment on the same line or within the three preceding
//!    lines (defense in depth next to the workspace-level
//!    `clippy::undocumented_unsafe_blocks = "deny"`).
//!
//! Rules match against the *code-only* line view produced by
//! [`crate::lexer::code_lines`]: comments are dropped and string-literal
//! contents are blanked before any needle is searched, so a pattern
//! quoted in a message, a doc comment, or a test fixture can never trip
//! a rule. That is also why the needles below can be plain constants —
//! this file scans itself without special-casing. Justification markers
//! (`relaxed:`, `SAFETY:`) live in comments, so those alone are searched
//! on the raw lines.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::lexer::code_lines;
use crate::report::Report;

/// Files allowed to use `Ordering::Relaxed` without per-site
/// justification comments, with the audit reason recorded. Paths are
/// relative to the workspace root, `/`-separated.
pub const RELAXED_OK: &[(&str, &str)] = &[
    (
        "crates/storage/src/disk.rs",
        "I/O statistics counters; read only by stats snapshots",
    ),
    (
        "crates/lock/src/manager.rs",
        "monotonic ticket allocation and test-harness stop flags",
    ),
    (
        "crates/core/src/sidefile.rs",
        "sequence allocation; the entries mutex is the ordering point",
    ),
    (
        "crates/core/src/reorg.rs",
        "reorganization-unit id allocation (uniqueness only)",
    ),
    (
        "crates/core/src/pass3.rs",
        "queue-depth gauge read for observability only",
    ),
    (
        "crates/core/src/db.rs",
        "transaction/owner id allocation (uniqueness only)",
    ),
    (
        "crates/core/src/daemon.rs",
        "daemon stop flag; shutdown is quiesced by joining the thread",
    ),
    (
        "crates/baseline/src/tandem.rs",
        "baseline stop flag and statistics counters",
    ),
    (
        "crates/txn/src/workload.rs",
        "throughput statistics and harness stop flag",
    ),
    (
        "crates/obs/src/metrics.rs",
        "metrics registry counters are relaxed by design (observability)",
    ),
    (
        "crates/obs/src/trace.rs",
        "trace ring sequence counter; observability only",
    ),
    (
        "crates/bench/src/experiments.rs",
        "benchmark harness statistics counters",
    ),
    (
        "crates/bench/src/bin/concurrency.rs",
        "benchmark harness statistics counters and stop flags",
    ),
    (
        "src/workloads.rs",
        "CLI workload-driver statistics counters",
    ),
    (
        "tests/concurrency_stress.rs",
        "stress-harness statistics counters and stop flags",
    ),
];

/// Path prefixes (workspace-relative, `/`-separated) exempt from the
/// facade-bypass rule: the facade and shims themselves, observability
/// (lock-free by design), checkers and harnesses that run outside the
/// modeled scenarios, and test/bench/example code.
pub const FACADE_EXEMPT: &[&str] = &[
    "shims/",
    "crates/sync/",
    "crates/obs/",
    "crates/check/",
    "crates/race/",
    "crates/bench/",
    "src/",
    "tests/",
    "examples/",
];

// Needles are matched against the code-only view, whose tokens are
// joined by single spaces — multi-token needles are therefore written
// in spaced form ("Ordering :: Relaxed", not "Ordering::Relaxed").
const RELAXED: &str = "Ordering :: Relaxed";
const PARKING: &str = "parking_lot";
const STD_SYNC: &str = "std :: sync ::";
const STD_ATOMIC: &str = "std :: sync :: atomic";
const UNSAFE_KW: &str = "unsafe";
const LOCK_CALL: &str = ". lock (";
const FACADE_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier"];
// Comment markers, searched on raw lines (comments are absent from the
// code view). Matching a marker only ever *clears* a finding, so the
// string-blindness of a raw-line search is the lenient direction.
const RELAXED_MARK: &str = "relaxed:";
const SAFETY_MARK: &str = "SAFETY:";

/// Lint every `.rs` file under `root` (the workspace checkout), skipping
/// `target/` and VCS directories. Returns all findings plus summary
/// notes.
pub fn lint_sources(root: &Path) -> Report {
    let mut report = Report::new();
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();
    let mut relaxed_sites = 0usize;
    for rel in &files {
        let abs = root.join(rel);
        let text = match std::fs::read_to_string(&abs) {
            Ok(t) => t,
            Err(e) => {
                report.error(
                    "srclint",
                    "unreadable-source",
                    None,
                    None,
                    format!("{}: {e}", rel.display()),
                );
                continue;
            }
        };
        relaxed_sites += lint_file(&mut report, rel, &text);
    }
    report.note(format!(
        "srclint: scanned {} files; {} Relaxed sites audited; {} whitelisted files",
        files.len(),
        relaxed_sites,
        RELAXED_OK.len(),
    ));
    report
}

/// Returns the number of `Ordering::Relaxed` sites seen in this file.
fn lint_file(report: &mut Report, rel: &Path, text: &str) -> usize {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let raw: Vec<&str> = text.lines().collect();
    let code = code_lines(text);
    let relaxed_whitelisted = RELAXED_OK.iter().any(|(p, _)| *p == rel_str);
    // Integration tests, benches, and examples may use real (un-modeled)
    // primitives: they exercise true concurrency, not modeled schedules.
    let test_code = ["/tests/", "/benches/", "/examples/"]
        .iter()
        .any(|seg| rel_str.contains(seg));
    let facade_exempt = test_code || FACADE_EXEMPT.iter().any(|p| rel_str.starts_with(p));
    let marker_near = |idx: usize, span: usize, marker: &str| -> bool {
        let lo = idx.saturating_sub(span);
        raw.get(lo..=idx)
            .map(|window| window.iter().any(|l| l.contains(marker)))
            .unwrap_or(false)
    };
    let mut relaxed_sites = 0usize;
    let mut unsafe_depth: i32 = 0;
    for (idx, line) in code.iter().enumerate() {
        let lineno = idx + 1;

        // Rule 1: Relaxed needs a nearby justification or a whitelist.
        if line.contains(RELAXED) {
            relaxed_sites += 1;
            if !relaxed_whitelisted && !marker_near(idx, 5, RELAXED_MARK) {
                report.error(
                    "srclint",
                    "relaxed-unjustified",
                    None,
                    None,
                    format!(
                        "{rel_str}:{lineno}: Relaxed ordering without a nearby \
                         justification comment and file not whitelisted"
                    ),
                );
            }
        }

        // Rule 2: no raw sync imports outside the facade.
        if !facade_exempt {
            let uses_parking = contains_word(line, PARKING);
            let uses_std_atomic = line.contains(STD_ATOMIC);
            let uses_std_lock =
                line.contains(STD_SYNC) && FACADE_TYPES.iter().any(|t| contains_word(line, t));
            if uses_parking || uses_std_atomic || uses_std_lock {
                report.error(
                    "srclint",
                    "facade-bypass",
                    None,
                    None,
                    format!(
                        "{rel_str}:{lineno}: raw sync primitive bypasses the obr-sync \
                         facade (invisible to the model scheduler)"
                    ),
                );
            }
        }

        // Rules 3 + 4: unsafe tracking. Brace depth is line-based and
        // conservative — acceptable because the workspace target state
        // is zero unsafe (clippy denies undocumented blocks too).
        let opens = line.matches('{').count() as i32;
        let closes = line.matches('}').count() as i32;
        if contains_word(line, UNSAFE_KW) {
            if !marker_near(idx, 3, SAFETY_MARK) {
                report.error(
                    "srclint",
                    "undocumented-unsafe",
                    None,
                    None,
                    format!("{rel_str}:{lineno}: unsafe without a SAFETY: comment"),
                );
            }
            if line.contains(LOCK_CALL) {
                report.error(
                    "srclint",
                    "lock-in-unsafe",
                    None,
                    None,
                    format!("{rel_str}:{lineno}: blocking lock acquisition inside unsafe"),
                );
            }
            // Track the block only if it stays open past this line.
            unsafe_depth += (opens - closes).max(0);
        } else if unsafe_depth > 0 {
            if line.contains(LOCK_CALL) {
                report.error(
                    "srclint",
                    "lock-in-unsafe",
                    None,
                    None,
                    format!("{rel_str}:{lineno}: blocking lock acquisition inside unsafe"),
                );
            }
            unsafe_depth = (unsafe_depth + opens - closes).max(0);
        }
    }
    relaxed_sites
}

fn contains_word(haystack: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack.as_bytes()[at - 1].is_ascii_alphanumeric()
                && haystack.as_bytes()[at - 1] != b'_';
        let end = at + word.len();
        let after_ok = end >= haystack.len()
            || !haystack.as_bytes()[end].is_ascii_alphanumeric()
                && haystack.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut names: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    names.sort();
    for path in names {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | ".github") {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// Sanity guard for the whitelist itself: every whitelisted file must
/// exist in the tree being linted, otherwise the whitelist rots.
pub fn check_whitelist(root: &Path) -> Report {
    let mut report = Report::new();
    let mut seen = BTreeSet::new();
    for (path, reason) in RELAXED_OK {
        if !seen.insert(*path) {
            report.error(
                "srclint",
                "whitelist-duplicate",
                None,
                None,
                format!("{path} listed twice"),
            );
        }
        if reason.trim().is_empty() {
            report.error(
                "srclint",
                "whitelist-no-reason",
                None,
                None,
                format!("{path} has no audit reason"),
            );
        }
        if !root.join(path).is_file() {
            report.error(
                "srclint",
                "whitelist-stale",
                None,
                None,
                format!("{path} whitelisted but absent from the tree"),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_tree(files: &[(&str, &str)]) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering as O};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "obr-srclint-{}-{}",
            std::process::id(),
            N.fetch_add(1, O::Relaxed)
        ));
        for (rel, content) in files {
            let p = dir.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(p, content).unwrap();
        }
        dir
    }

    // Fixture contents are plain literals: the linter reads them back
    // through the lexer's code view, and string literals in *this* file
    // are blanked before matching, so nothing here trips the rules.
    #[test]
    fn unjustified_relaxed_is_flagged_and_comment_clears_it() {
        let bad = "fn f() { x.load(Ordering::Relaxed); }\n";
        let good =
            "// relaxed: counter is observability-only\nfn f() { x.load(Ordering::Relaxed); }\n";
        let root = scratch_tree(&[
            ("crates/core/src/a.rs", bad),
            ("crates/core/src/b.rs", good),
        ]);
        let r = lint_sources(&root);
        let flagged: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.code == "relaxed-unjustified")
            .collect();
        assert_eq!(flagged.len(), 1, "{r}");
        assert!(flagged[0].detail.contains("a.rs"), "{r}");
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn relaxed_inside_string_or_comment_is_invisible() {
        let fixture = concat!(
            "// a doc mentioning Ordering::Relaxed is not a use site\n",
            "fn f() -> &'static str {\n",
            "    \"self.real.load(Ordering::Relaxed)\"\n",
            "}\n",
        );
        let root = scratch_tree(&[("crates/core/src/a.rs", fixture)]);
        let r = lint_sources(&root);
        assert!(
            !r.findings.iter().any(|f| f.code == "relaxed-unjustified"),
            "string/comment text must not trip the lint: {r}"
        );
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn facade_bypass_flagged_outside_exempt_paths() {
        let import = "use parking_lot::Mutex;\n";
        let root = scratch_tree(&[
            ("crates/core/src/a.rs", import),
            ("shims/x/src/lib.rs", import),
            ("tests/t.rs", import),
        ]);
        let r = lint_sources(&root);
        let flagged: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.code == "facade-bypass")
            .collect();
        assert_eq!(flagged.len(), 1, "{r}");
        assert!(flagged[0].detail.contains("crates/core"), "{r}");
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn std_sync_import_in_string_is_invisible() {
        let fixture = "fn f() -> &'static str { \"use std::sync::Mutex;\" }\n";
        let root = scratch_tree(&[("crates/core/src/a.rs", fixture)]);
        let r = lint_sources(&root);
        assert!(
            !r.findings.iter().any(|f| f.code == "facade-bypass"),
            "quoted import must not trip the facade rule: {r}"
        );
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn undocumented_unsafe_and_lock_inside_it() {
        let bad = "fn f() { unsafe { g.lock(); } }\n";
        let good = "// SAFETY: region is a no-op placeholder\nfn f() { unsafe { } }\n";
        let root = scratch_tree(&[
            ("crates/core/src/a.rs", bad),
            ("crates/core/src/b.rs", good),
        ]);
        let r = lint_sources(&root);
        assert!(
            r.findings.iter().any(|f| f.code == "undocumented-unsafe"),
            "{r}"
        );
        assert!(r.findings.iter().any(|f| f.code == "lock-in-unsafe"), "{r}");
        assert!(
            !r.findings.iter().any(|f| f.detail.contains("b.rs")),
            "documented empty unsafe must pass: {r}"
        );
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn whitelist_entries_point_at_real_files() {
        // Walk up from the crate dir to the workspace root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let r = check_whitelist(root);
        assert!(r.is_clean(), "{r}");
    }
}
