//! Group commit under real concurrency: K committers racing `flush_to` on a
//! file-backed log must each observe their own durability, while the
//! flusher-baton batching keeps the fsync count at or below K (and, when the
//! scheduler cooperates, well below it).

use std::sync::{Arc, Barrier};

use obr_wal::{LogManager, LogRecord, TxnId};

fn temp_wal(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("obr-wal-gc-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("wal.log")
}

/// K concurrent committers: every waiter sees `durable_lsn >= its lsn`, and
/// the whole storm costs between 1 and K fsyncs.
#[test]
fn concurrent_committers_batch_into_at_most_k_fsyncs() {
    const K: u64 = 8;
    const COMMITS_PER_THREAD: u64 = 10;
    let path = temp_wal("batch");
    let log = Arc::new(LogManager::open_file(&path).unwrap());
    let before = log.sync_stats();
    let barrier = Barrier::new(K as usize);
    std::thread::scope(|s| {
        for t in 0..K {
            let log = Arc::clone(&log);
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..COMMITS_PER_THREAD {
                    let lsn = log.append(&LogRecord::TxnCommit {
                        txn: TxnId(t * COMMITS_PER_THREAD + i + 1),
                    });
                    log.flush_to(lsn).unwrap();
                    assert!(
                        log.durable_lsn() >= lsn,
                        "thread {t} commit {i}: durable {} < requested {lsn}",
                        log.durable_lsn()
                    );
                }
            });
        }
    });
    let d = log.sync_stats().since(&before);
    // A committer whose lsn was already covered by someone else's batch
    // returns without touching the disk, so flush_calls <= total commits.
    assert!(d.flush_calls <= K * COMMITS_PER_THREAD);
    assert!(d.syncs >= 1, "someone must have hit the disk");
    assert!(
        d.syncs <= K * COMMITS_PER_THREAD,
        "group commit can never fsync more than once per commit: {} > {}",
        d.syncs,
        K * COMMITS_PER_THREAD
    );
    // Nothing is lost: a crash now replays every record.
    assert_eq!(log.simulate_crash(), 0);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

/// One storm of K committers released at once on a single barrier tick:
/// fsyncs stay <= K even in the worst case where nobody overlaps.
#[test]
fn single_wave_of_committers_never_exceeds_k_fsyncs() {
    const K: u64 = 8;
    let path = temp_wal("wave");
    let log = Arc::new(LogManager::open_file(&path).unwrap());
    let before = log.sync_stats();
    let barrier = Barrier::new(K as usize);
    std::thread::scope(|s| {
        for t in 0..K {
            let log = Arc::clone(&log);
            let barrier = &barrier;
            s.spawn(move || {
                let lsn = log.append(&LogRecord::TxnCommit { txn: TxnId(t + 1) });
                barrier.wait();
                log.flush_to(lsn).unwrap();
                assert!(log.durable_lsn() >= lsn);
            });
        }
    });
    let d = log.sync_stats().since(&before);
    assert!(d.flush_calls <= K);
    assert!(
        (1..=K).contains(&d.syncs),
        "got {} fsyncs for {K} commits",
        d.syncs
    );
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
