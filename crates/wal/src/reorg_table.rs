//! The reorganization state table (§5 of the paper).
//!
//! "We keep an in-memory table to record the minimum LSN of the current
//! reorganization unit. (...) We keep the most recent LSN of the unit. We
//! also record the largest key (LK) of the last finished reorganization unit
//! processed. (...) It should be very small. It will be copied to the log
//! checkpoint record."
//!
//! Because reorganization runs as one process, the table has one, two, or
//! three live values at any time — that invariant is preserved here and
//! observable via [`ReorgStateTable::snapshot`].

use obr_sync::Mutex;

use obr_storage::Lsn;

use crate::record::ReorgTableSnapshot;

/// The (tiny) system table driving reorganization restart.
#[derive(Debug, Default)]
pub struct ReorgStateTable {
    inner: Mutex<ReorgTableSnapshot>,
}

impl ReorgStateTable {
    /// An empty table: no finished unit, no in-flight unit.
    pub fn new() -> ReorgStateTable {
        ReorgStateTable::default()
    }

    /// Record that a new unit started; `begin_lsn` is its BEGIN record.
    pub fn begin_unit(&self, begin_lsn: Lsn) {
        let mut g = self.inner.lock();
        debug_assert!(
            g.begin_lsn.is_none(),
            "at most one reorganization unit may be in flight"
        );
        g.begin_lsn = Some(begin_lsn);
        g.recent_lsn = Some(begin_lsn);
    }

    /// Record the most recent LSN written by the in-flight unit, returning
    /// the previous one (used as the `prev_lsn` field of the next record).
    pub fn advance(&self, lsn: Lsn) -> Lsn {
        let mut g = self.inner.lock();
        let prev = g.recent_lsn.unwrap_or(Lsn::ZERO);
        g.recent_lsn = Some(lsn);
        prev
    }

    /// The `prev_lsn` the next unit record should carry.
    pub fn recent_lsn(&self) -> Lsn {
        self.inner.lock().recent_lsn.unwrap_or(Lsn::ZERO)
    }

    /// The unit finished; its entry is deleted and LK advances.
    pub fn finish_unit(&self, largest_key: u64) {
        let mut g = self.inner.lock();
        g.begin_lsn = None;
        g.recent_lsn = None;
        g.lk = Some(match g.lk {
            Some(old) => old.max(largest_key),
            None => largest_key,
        });
    }

    /// The unit was undone (deadlock victim); its entry is deleted without
    /// advancing LK.
    pub fn abandon_unit(&self) {
        let mut g = self.inner.lock();
        g.begin_lsn = None;
        g.recent_lsn = None;
    }

    /// Largest key of the last finished unit — where to restart (§5).
    pub fn lk(&self) -> Option<u64> {
        self.inner.lock().lk
    }

    /// The reorganization completed: clear LK so the *next* reorganization
    /// starts from the beginning (the table only carries restart state for
    /// an incomplete run).
    pub fn clear_lk(&self) {
        self.inner.lock().lk = None;
    }

    /// BEGIN LSN of the in-flight unit, if any. Together with the
    /// transaction low-water mark this bounds the log that must be retained.
    pub fn begin_lsn(&self) -> Option<Lsn> {
        self.inner.lock().begin_lsn
    }

    /// True when a unit is in flight.
    pub fn unit_in_flight(&self) -> bool {
        self.inner.lock().begin_lsn.is_some()
    }

    /// Copy for a checkpoint record.
    pub fn snapshot(&self) -> ReorgTableSnapshot {
        *self.inner.lock()
    }

    /// Restore from a checkpoint (recovery).
    pub fn restore(&self, snap: ReorgTableSnapshot) {
        *self.inner.lock() = snap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_of_one_unit() {
        let t = ReorgStateTable::new();
        assert!(!t.unit_in_flight());
        assert_eq!(t.lk(), None);

        t.begin_unit(Lsn(5));
        assert!(t.unit_in_flight());
        assert_eq!(t.begin_lsn(), Some(Lsn(5)));
        assert_eq!(t.recent_lsn(), Lsn(5));

        // Writing the next record: prev = 5, recent becomes 6.
        assert_eq!(t.advance(Lsn(6)), Lsn(5));
        assert_eq!(t.advance(Lsn(9)), Lsn(6));

        t.finish_unit(42);
        assert!(!t.unit_in_flight());
        assert_eq!(t.lk(), Some(42));
        assert_eq!(t.recent_lsn(), Lsn::ZERO);
    }

    #[test]
    fn clear_lk_resets_restart_position() {
        let t = ReorgStateTable::new();
        t.begin_unit(Lsn(1));
        t.finish_unit(99);
        assert_eq!(t.lk(), Some(99));
        t.clear_lk();
        assert_eq!(t.lk(), None);
    }

    #[test]
    fn lk_is_monotone() {
        let t = ReorgStateTable::new();
        t.begin_unit(Lsn(1));
        t.finish_unit(50);
        t.begin_unit(Lsn(2));
        t.finish_unit(30); // out-of-order finish must not regress LK
        assert_eq!(t.lk(), Some(50));
    }

    #[test]
    fn abandon_clears_unit_without_advancing_lk() {
        let t = ReorgStateTable::new();
        t.begin_unit(Lsn(1));
        t.finish_unit(10);
        t.begin_unit(Lsn(2));
        t.abandon_unit();
        assert!(!t.unit_in_flight());
        assert_eq!(t.lk(), Some(10));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let t = ReorgStateTable::new();
        t.begin_unit(Lsn(3));
        t.advance(Lsn(4));
        let snap = t.snapshot();
        let t2 = ReorgStateTable::new();
        t2.restore(snap);
        assert_eq!(t2.begin_lsn(), Some(Lsn(3)));
        assert_eq!(t2.recent_lsn(), Lsn(4));
        assert_eq!(t2.snapshot(), snap);
    }

    #[test]
    #[should_panic(expected = "at most one")]
    #[cfg(debug_assertions)]
    fn double_begin_panics_in_debug() {
        let t = ReorgStateTable::new();
        t.begin_unit(Lsn(1));
        t.begin_unit(Lsn(2));
    }
}
