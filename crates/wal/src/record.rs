//! Log record types and their binary encoding.

use std::fmt;

use obr_storage::codec::{Reader, Writer};
use obr_storage::{Lsn, PageId, StorageError, StorageResult, PAGE_SIZE};

/// Transaction identifier. `TxnId::SYSTEM` tags structure modifications and
/// reorganizer actions that are not owned by a user transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Owner of system actions (splits, reorganization).
    pub const SYSTEM: TxnId = TxnId(0);
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Reorganization-unit identifier ("Unit m" in the paper); monotonically
/// increasing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UnitId(pub u64);

/// The `Type` field of a BEGIN record (§5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum ReorgKind {
    /// Compacting leaf pages under the same base page (in-place).
    Compact = 0,
    /// Swapping two leaf pages under one or two base pages.
    Swap = 1,
    /// Moving one leaf page to an empty page (new-place copy-and-switch).
    Move = 2,
}

impl ReorgKind {
    fn from_u8(v: u8) -> StorageResult<ReorgKind> {
        match v {
            0 => Ok(ReorgKind::Compact),
            1 => Ok(ReorgKind::Swap),
            2 => Ok(ReorgKind::Move),
            _ => Err(StorageError::Corrupt(format!("bad ReorgKind tag {v}"))),
        }
    }
}

/// What a MOVE record carries for the moved records.
///
/// Under careful writing the buffer manager guarantees the source page image
/// survives on disk until the destination is durable, so logging the keys is
/// enough ([`MovePayload::Keys`]); without it, full record bodies must be
/// logged ([`MovePayload::Records`]). Experiment E6 measures the difference.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MovePayload {
    /// Keys only (careful writing enforced).
    Keys(Vec<u64>),
    /// Full record contents.
    Records(Vec<(u64, Vec<u8>)>),
}

impl MovePayload {
    /// Keys covered by this payload.
    pub fn keys(&self) -> Vec<u64> {
        match self {
            MovePayload::Keys(ks) => ks.clone(),
            MovePayload::Records(rs) => rs.iter().map(|(k, _)| *k).collect(),
        }
    }

    /// Number of records moved.
    pub fn len(&self) -> usize {
        match self {
            MovePayload::Keys(ks) => ks.len(),
            MovePayload::Records(rs) => rs.len(),
        }
    }

    /// True when no records are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Snapshot of the reorganization state table for a checkpoint (§5).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ReorgTableSnapshot {
    /// Largest key of the last finished reorganization unit.
    pub lk: Option<u64>,
    /// LSN of the BEGIN record of the in-flight unit, if any.
    pub begin_lsn: Option<Lsn>,
    /// Most recent LSN written by the in-flight unit, if any.
    pub recent_lsn: Option<Lsn>,
}

/// Pass-3 restart state carried in checkpoints and stable-key records (§7.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pass3State {
    /// Low mark of the next base page to read ("last stable key").
    pub stable_key: u64,
    /// Root of the concurrently-built new tree.
    pub new_root: PageId,
}

/// Contents of a checkpoint record.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CheckpointData {
    /// Reorganization state table copy.
    pub reorg: ReorgTableSnapshot,
    /// Active transactions and their most recent LSNs.
    pub active_txns: Vec<(TxnId, Lsn)>,
    /// In-flight internal-page reorganization, if any.
    pub pass3: Option<Pass3State>,
}

/// A write-ahead log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogRecord {
    /// A user transaction started.
    TxnBegin {
        /// The transaction.
        txn: TxnId,
    },
    /// A user transaction committed.
    TxnCommit {
        /// The transaction.
        txn: TxnId,
    },
    /// A user transaction finished rolling back.
    TxnAbort {
        /// The transaction.
        txn: TxnId,
    },
    /// A record was inserted into a leaf (or side-file) page.
    TxnInsert {
        /// Owning transaction.
        txn: TxnId,
        /// Page receiving the record.
        page: PageId,
        /// Record key.
        key: u64,
        /// Record value.
        value: Vec<u8>,
        /// Previous LSN of this transaction.
        prev_lsn: Lsn,
    },
    /// A record was deleted from a leaf (or side-file) page.
    TxnDelete {
        /// Owning transaction.
        txn: TxnId,
        /// Page the record was removed from.
        page: PageId,
        /// Record key.
        key: u64,
        /// Old value (needed for undo).
        old_value: Vec<u8>,
        /// Previous LSN of this transaction.
        prev_lsn: Lsn,
    },
    /// A record's value was updated in place.
    TxnUpdate {
        /// Owning transaction.
        txn: TxnId,
        /// Page holding the record.
        page: PageId,
        /// Record key.
        key: u64,
        /// Old value (undo).
        old_value: Vec<u8>,
        /// New value (redo).
        new_value: Vec<u8>,
        /// Previous LSN of this transaction.
        prev_lsn: Lsn,
    },
    /// Compensation record written while undoing (redo-only).
    Clr {
        /// Owning transaction.
        txn: TxnId,
        /// Page the compensation applies to.
        page: PageId,
        /// `true` when the compensation re-inserts `key`/`value`; `false`
        /// when it removes `key`.
        reinsert: bool,
        /// Record key.
        key: u64,
        /// Record value (empty for removals).
        value: Vec<u8>,
        /// Next record of this transaction to undo.
        undo_next: Lsn,
    },
    /// An atomic structure modification: full images of every changed page,
    /// plus the new root/height when the tree grew or shrank.
    Smo {
        /// Full after-images of the changed pages.
        images: Vec<(PageId, Box<[u8; PAGE_SIZE]>)>,
        /// `(new_root, new_height)` when the SMO changed the tree anchor.
        new_anchor: Option<(PageId, u8)>,
    },
    /// BEGIN of a reorganization unit (§5). Written only after all locks for
    /// the unit are acquired.
    ReorgBegin {
        /// Unit id.
        unit: UnitId,
        /// Unit type.
        kind: ReorgKind,
        /// Base pages involved.
        base_pages: Vec<PageId>,
        /// Leaf pages involved.
        leaf_pages: Vec<PageId>,
    },
    /// MOVE: records moved from `org` to `dest` (§5). Under careful writing
    /// the payload carries keys only.
    ReorgMove {
        /// Unit id.
        unit: UnitId,
        /// Source leaf.
        org: PageId,
        /// Destination leaf.
        dest: PageId,
        /// Moved records (keys-only or full bodies).
        payload: MovePayload,
        /// Previous LSN of this unit.
        prev_lsn: Lsn,
    },
    /// Contents of `page_a` and `page_b` were exchanged; `image_a_old` is
    /// the pre-swap image of `page_a` — the one full page the paper says a
    /// swap cannot avoid logging.
    ReorgSwap {
        /// Unit id.
        unit: UnitId,
        /// First page of the swap (its old image is logged).
        page_a: PageId,
        /// Second page of the swap.
        page_b: PageId,
        /// Pre-swap image of `page_a`.
        image_a_old: Box<[u8; PAGE_SIZE]>,
        /// Previous LSN of this unit.
        prev_lsn: Lsn,
    },
    /// MODIFY: the base-page entries for the unit's leaves were rewritten.
    ReorgModify {
        /// Unit id.
        unit: UnitId,
        /// Base page updated.
        base_page: PageId,
        /// `(key, child)` entries removed.
        old_entries: Vec<(u64, PageId)>,
        /// `(key, child)` entries inserted.
        new_entries: Vec<(u64, PageId)>,
        /// Previous LSN of this unit.
        prev_lsn: Lsn,
    },
    /// Side-pointer maintenance on a neighbouring leaf (§4.3).
    ReorgSidePtr {
        /// Unit id.
        unit: UnitId,
        /// Leaf whose side pointers changed.
        page: PageId,
        /// Old left sibling (undo).
        old_left: PageId,
        /// Old right sibling (undo).
        old_right: PageId,
        /// New left sibling (redo).
        new_left: PageId,
        /// New right sibling (redo).
        new_right: PageId,
        /// Previous LSN of this unit.
        prev_lsn: Lsn,
    },
    /// END of a reorganization unit; `largest_key` becomes LK.
    ReorgEnd {
        /// Unit id.
        unit: UnitId,
        /// Largest key processed by the unit.
        largest_key: u64,
    },
    /// Pass 3 stable point: the new tree is durable up to `state.stable_key`
    /// (§7.3).
    Pass3Stable {
        /// Restart state.
        state: Pass3State,
    },
    /// Pass 3 switch: the tree anchor moved from the old root to the new
    /// root (§7.4).
    Pass3Switch {
        /// Root of the old tree.
        old_root: PageId,
        /// Root of the new tree.
        new_root: PageId,
        /// Height of the new tree.
        new_height: u8,
    },
    /// Log checkpoint.
    Checkpoint {
        /// Checkpointed state.
        data: CheckpointData,
    },
}

const TAG_TXN_BEGIN: u8 = 1;
const TAG_TXN_COMMIT: u8 = 2;
const TAG_TXN_ABORT: u8 = 3;
const TAG_TXN_INSERT: u8 = 4;
const TAG_TXN_DELETE: u8 = 5;
const TAG_TXN_UPDATE: u8 = 6;
const TAG_CLR: u8 = 7;
const TAG_SMO: u8 = 8;
const TAG_REORG_BEGIN: u8 = 9;
const TAG_REORG_MOVE: u8 = 10;
const TAG_REORG_SWAP: u8 = 11;
const TAG_REORG_MODIFY: u8 = 12;
const TAG_REORG_SIDEPTR: u8 = 13;
const TAG_REORG_END: u8 = 14;
const TAG_PASS3_STABLE: u8 = 15;
const TAG_PASS3_SWITCH: u8 = 16;
const TAG_CHECKPOINT: u8 = 17;

fn put_page_vec(w: &mut Writer, v: &[PageId]) {
    w.put_u32(v.len() as u32);
    for p in v {
        w.put_u32(p.0);
    }
}

fn get_page_vec(r: &mut Reader<'_>) -> StorageResult<Vec<PageId>> {
    let n = r.get_u32()? as usize;
    let mut v = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        v.push(PageId(r.get_u32()?));
    }
    Ok(v)
}

fn put_entry_vec(w: &mut Writer, v: &[(u64, PageId)]) {
    w.put_u32(v.len() as u32);
    for (k, p) in v {
        w.put_u64(*k);
        w.put_u32(p.0);
    }
}

fn get_entry_vec(r: &mut Reader<'_>) -> StorageResult<Vec<(u64, PageId)>> {
    let n = r.get_u32()? as usize;
    let mut v = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let k = r.get_u64()?;
        let p = PageId(r.get_u32()?);
        v.push((k, p));
    }
    Ok(v)
}

fn put_image(w: &mut Writer, img: &[u8; PAGE_SIZE]) {
    w.put_raw(img);
}

fn get_image(r: &mut Reader<'_>) -> StorageResult<Box<[u8; PAGE_SIZE]>> {
    let raw = r.get_raw(PAGE_SIZE)?;
    let mut img = Box::new([0u8; PAGE_SIZE]);
    img.copy_from_slice(raw);
    Ok(img)
}

fn put_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        Some(x) => {
            w.put_u8(1);
            w.put_u64(x);
        }
        None => w.put_u8(0),
    }
}

fn get_opt_u64(r: &mut Reader<'_>) -> StorageResult<Option<u64>> {
    Ok(if r.get_u8()? == 1 {
        Some(r.get_u64()?)
    } else {
        None
    })
}

impl LogRecord {
    /// A short, stable name for the record kind (log-size accounting).
    pub fn kind_name(&self) -> &'static str {
        match self {
            LogRecord::TxnBegin { .. } => "txn_begin",
            LogRecord::TxnCommit { .. } => "txn_commit",
            LogRecord::TxnAbort { .. } => "txn_abort",
            LogRecord::TxnInsert { .. } => "txn_insert",
            LogRecord::TxnDelete { .. } => "txn_delete",
            LogRecord::TxnUpdate { .. } => "txn_update",
            LogRecord::Clr { .. } => "clr",
            LogRecord::Smo { .. } => "smo",
            LogRecord::ReorgBegin { .. } => "reorg_begin",
            LogRecord::ReorgMove { .. } => "reorg_move",
            LogRecord::ReorgSwap { .. } => "reorg_swap",
            LogRecord::ReorgModify { .. } => "reorg_modify",
            LogRecord::ReorgSidePtr { .. } => "reorg_sideptr",
            LogRecord::ReorgEnd { .. } => "reorg_end",
            LogRecord::Pass3Stable { .. } => "pass3_stable",
            LogRecord::Pass3Switch { .. } => "pass3_switch",
            LogRecord::Checkpoint { .. } => "checkpoint",
        }
    }

    /// True for records written by the reorganizer (E6 accounting).
    pub fn is_reorg(&self) -> bool {
        matches!(
            self,
            LogRecord::ReorgBegin { .. }
                | LogRecord::ReorgMove { .. }
                | LogRecord::ReorgSwap { .. }
                | LogRecord::ReorgModify { .. }
                | LogRecord::ReorgSidePtr { .. }
                | LogRecord::ReorgEnd { .. }
                | LogRecord::Pass3Stable { .. }
                | LogRecord::Pass3Switch { .. }
        )
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        match self {
            LogRecord::TxnBegin { txn } => {
                w.put_u8(TAG_TXN_BEGIN);
                w.put_u64(txn.0);
            }
            LogRecord::TxnCommit { txn } => {
                w.put_u8(TAG_TXN_COMMIT);
                w.put_u64(txn.0);
            }
            LogRecord::TxnAbort { txn } => {
                w.put_u8(TAG_TXN_ABORT);
                w.put_u64(txn.0);
            }
            LogRecord::TxnInsert {
                txn,
                page,
                key,
                value,
                prev_lsn,
            } => {
                w.put_u8(TAG_TXN_INSERT);
                w.put_u64(txn.0);
                w.put_u32(page.0);
                w.put_u64(*key);
                w.put_bytes(value);
                w.put_u64(prev_lsn.0);
            }
            LogRecord::TxnDelete {
                txn,
                page,
                key,
                old_value,
                prev_lsn,
            } => {
                w.put_u8(TAG_TXN_DELETE);
                w.put_u64(txn.0);
                w.put_u32(page.0);
                w.put_u64(*key);
                w.put_bytes(old_value);
                w.put_u64(prev_lsn.0);
            }
            LogRecord::TxnUpdate {
                txn,
                page,
                key,
                old_value,
                new_value,
                prev_lsn,
            } => {
                w.put_u8(TAG_TXN_UPDATE);
                w.put_u64(txn.0);
                w.put_u32(page.0);
                w.put_u64(*key);
                w.put_bytes(old_value);
                w.put_bytes(new_value);
                w.put_u64(prev_lsn.0);
            }
            LogRecord::Clr {
                txn,
                page,
                reinsert,
                key,
                value,
                undo_next,
            } => {
                w.put_u8(TAG_CLR);
                w.put_u64(txn.0);
                w.put_u32(page.0);
                w.put_u8(u8::from(*reinsert));
                w.put_u64(*key);
                w.put_bytes(value);
                w.put_u64(undo_next.0);
            }
            LogRecord::Smo { images, new_anchor } => {
                w.put_u8(TAG_SMO);
                w.put_u32(images.len() as u32);
                for (p, img) in images {
                    w.put_u32(p.0);
                    put_image(&mut w, img);
                }
                match new_anchor {
                    Some((root, h)) => {
                        w.put_u8(1);
                        w.put_u32(root.0);
                        w.put_u8(*h);
                    }
                    None => w.put_u8(0),
                }
            }
            LogRecord::ReorgBegin {
                unit,
                kind,
                base_pages,
                leaf_pages,
            } => {
                w.put_u8(TAG_REORG_BEGIN);
                w.put_u64(unit.0);
                w.put_u8(*kind as u8);
                put_page_vec(&mut w, base_pages);
                put_page_vec(&mut w, leaf_pages);
            }
            LogRecord::ReorgMove {
                unit,
                org,
                dest,
                payload,
                prev_lsn,
            } => {
                w.put_u8(TAG_REORG_MOVE);
                w.put_u64(unit.0);
                w.put_u32(org.0);
                w.put_u32(dest.0);
                match payload {
                    MovePayload::Keys(ks) => {
                        w.put_u8(0);
                        w.put_u32(ks.len() as u32);
                        for k in ks {
                            w.put_u64(*k);
                        }
                    }
                    MovePayload::Records(rs) => {
                        w.put_u8(1);
                        w.put_u32(rs.len() as u32);
                        for (k, v) in rs {
                            w.put_u64(*k);
                            w.put_bytes(v);
                        }
                    }
                }
                w.put_u64(prev_lsn.0);
            }
            LogRecord::ReorgSwap {
                unit,
                page_a,
                page_b,
                image_a_old,
                prev_lsn,
            } => {
                w.put_u8(TAG_REORG_SWAP);
                w.put_u64(unit.0);
                w.put_u32(page_a.0);
                w.put_u32(page_b.0);
                put_image(&mut w, image_a_old);
                w.put_u64(prev_lsn.0);
            }
            LogRecord::ReorgModify {
                unit,
                base_page,
                old_entries,
                new_entries,
                prev_lsn,
            } => {
                w.put_u8(TAG_REORG_MODIFY);
                w.put_u64(unit.0);
                w.put_u32(base_page.0);
                put_entry_vec(&mut w, old_entries);
                put_entry_vec(&mut w, new_entries);
                w.put_u64(prev_lsn.0);
            }
            LogRecord::ReorgSidePtr {
                unit,
                page,
                old_left,
                old_right,
                new_left,
                new_right,
                prev_lsn,
            } => {
                w.put_u8(TAG_REORG_SIDEPTR);
                w.put_u64(unit.0);
                w.put_u32(page.0);
                w.put_u32(old_left.0);
                w.put_u32(old_right.0);
                w.put_u32(new_left.0);
                w.put_u32(new_right.0);
                w.put_u64(prev_lsn.0);
            }
            LogRecord::ReorgEnd { unit, largest_key } => {
                w.put_u8(TAG_REORG_END);
                w.put_u64(unit.0);
                w.put_u64(*largest_key);
            }
            LogRecord::Pass3Stable { state } => {
                w.put_u8(TAG_PASS3_STABLE);
                w.put_u64(state.stable_key);
                w.put_u32(state.new_root.0);
            }
            LogRecord::Pass3Switch {
                old_root,
                new_root,
                new_height,
            } => {
                w.put_u8(TAG_PASS3_SWITCH);
                w.put_u32(old_root.0);
                w.put_u32(new_root.0);
                w.put_u8(*new_height);
            }
            LogRecord::Checkpoint { data } => {
                w.put_u8(TAG_CHECKPOINT);
                put_opt_u64(&mut w, data.reorg.lk);
                put_opt_u64(&mut w, data.reorg.begin_lsn.map(|l| l.0));
                put_opt_u64(&mut w, data.reorg.recent_lsn.map(|l| l.0));
                w.put_u32(data.active_txns.len() as u32);
                for (t, l) in &data.active_txns {
                    w.put_u64(t.0);
                    w.put_u64(l.0);
                }
                match &data.pass3 {
                    Some(s) => {
                        w.put_u8(1);
                        w.put_u64(s.stable_key);
                        w.put_u32(s.new_root.0);
                    }
                    None => w.put_u8(0),
                }
            }
        }
        w.into_bytes()
    }

    /// Decode from bytes.
    pub fn decode(bytes: &[u8]) -> StorageResult<LogRecord> {
        let mut r = Reader::new(bytes);
        let tag = r.get_u8()?;
        let rec = match tag {
            TAG_TXN_BEGIN => LogRecord::TxnBegin {
                txn: TxnId(r.get_u64()?),
            },
            TAG_TXN_COMMIT => LogRecord::TxnCommit {
                txn: TxnId(r.get_u64()?),
            },
            TAG_TXN_ABORT => LogRecord::TxnAbort {
                txn: TxnId(r.get_u64()?),
            },
            TAG_TXN_INSERT => LogRecord::TxnInsert {
                txn: TxnId(r.get_u64()?),
                page: PageId(r.get_u32()?),
                key: r.get_u64()?,
                value: r.get_bytes()?,
                prev_lsn: Lsn(r.get_u64()?),
            },
            TAG_TXN_DELETE => LogRecord::TxnDelete {
                txn: TxnId(r.get_u64()?),
                page: PageId(r.get_u32()?),
                key: r.get_u64()?,
                old_value: r.get_bytes()?,
                prev_lsn: Lsn(r.get_u64()?),
            },
            TAG_TXN_UPDATE => LogRecord::TxnUpdate {
                txn: TxnId(r.get_u64()?),
                page: PageId(r.get_u32()?),
                key: r.get_u64()?,
                old_value: r.get_bytes()?,
                new_value: r.get_bytes()?,
                prev_lsn: Lsn(r.get_u64()?),
            },
            TAG_CLR => LogRecord::Clr {
                txn: TxnId(r.get_u64()?),
                page: PageId(r.get_u32()?),
                reinsert: r.get_u8()? == 1,
                key: r.get_u64()?,
                value: r.get_bytes()?,
                undo_next: Lsn(r.get_u64()?),
            },
            TAG_SMO => {
                let n = r.get_u32()? as usize;
                let mut images = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let p = PageId(r.get_u32()?);
                    images.push((p, get_image(&mut r)?));
                }
                let new_anchor = if r.get_u8()? == 1 {
                    let root = PageId(r.get_u32()?);
                    let h = r.get_u8()?;
                    Some((root, h))
                } else {
                    None
                };
                LogRecord::Smo { images, new_anchor }
            }
            TAG_REORG_BEGIN => LogRecord::ReorgBegin {
                unit: UnitId(r.get_u64()?),
                kind: ReorgKind::from_u8(r.get_u8()?)?,
                base_pages: get_page_vec(&mut r)?,
                leaf_pages: get_page_vec(&mut r)?,
            },
            TAG_REORG_MOVE => {
                let unit = UnitId(r.get_u64()?);
                let org = PageId(r.get_u32()?);
                let dest = PageId(r.get_u32()?);
                let payload = match r.get_u8()? {
                    0 => {
                        let n = r.get_u32()? as usize;
                        let mut ks = Vec::with_capacity(n.min(1 << 16));
                        for _ in 0..n {
                            ks.push(r.get_u64()?);
                        }
                        MovePayload::Keys(ks)
                    }
                    1 => {
                        let n = r.get_u32()? as usize;
                        let mut rs = Vec::with_capacity(n.min(1 << 16));
                        for _ in 0..n {
                            let k = r.get_u64()?;
                            let v = r.get_bytes()?;
                            rs.push((k, v));
                        }
                        MovePayload::Records(rs)
                    }
                    t => return Err(StorageError::Corrupt(format!("bad MovePayload tag {t}"))),
                };
                LogRecord::ReorgMove {
                    unit,
                    org,
                    dest,
                    payload,
                    prev_lsn: Lsn(r.get_u64()?),
                }
            }
            TAG_REORG_SWAP => LogRecord::ReorgSwap {
                unit: UnitId(r.get_u64()?),
                page_a: PageId(r.get_u32()?),
                page_b: PageId(r.get_u32()?),
                image_a_old: get_image(&mut r)?,
                prev_lsn: Lsn(r.get_u64()?),
            },
            TAG_REORG_MODIFY => LogRecord::ReorgModify {
                unit: UnitId(r.get_u64()?),
                base_page: PageId(r.get_u32()?),
                old_entries: get_entry_vec(&mut r)?,
                new_entries: get_entry_vec(&mut r)?,
                prev_lsn: Lsn(r.get_u64()?),
            },
            TAG_REORG_SIDEPTR => LogRecord::ReorgSidePtr {
                unit: UnitId(r.get_u64()?),
                page: PageId(r.get_u32()?),
                old_left: PageId(r.get_u32()?),
                old_right: PageId(r.get_u32()?),
                new_left: PageId(r.get_u32()?),
                new_right: PageId(r.get_u32()?),
                prev_lsn: Lsn(r.get_u64()?),
            },
            TAG_REORG_END => LogRecord::ReorgEnd {
                unit: UnitId(r.get_u64()?),
                largest_key: r.get_u64()?,
            },
            TAG_PASS3_STABLE => LogRecord::Pass3Stable {
                state: Pass3State {
                    stable_key: r.get_u64()?,
                    new_root: PageId(r.get_u32()?),
                },
            },
            TAG_PASS3_SWITCH => LogRecord::Pass3Switch {
                old_root: PageId(r.get_u32()?),
                new_root: PageId(r.get_u32()?),
                new_height: r.get_u8()?,
            },
            TAG_CHECKPOINT => {
                let lk = get_opt_u64(&mut r)?;
                let begin_lsn = get_opt_u64(&mut r)?.map(Lsn);
                let recent_lsn = get_opt_u64(&mut r)?.map(Lsn);
                let n = r.get_u32()? as usize;
                let mut active_txns = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    let t = TxnId(r.get_u64()?);
                    let l = Lsn(r.get_u64()?);
                    active_txns.push((t, l));
                }
                let pass3 = if r.get_u8()? == 1 {
                    Some(Pass3State {
                        stable_key: r.get_u64()?,
                        new_root: PageId(r.get_u32()?),
                    })
                } else {
                    None
                };
                LogRecord::Checkpoint {
                    data: CheckpointData {
                        reorg: ReorgTableSnapshot {
                            lk,
                            begin_lsn,
                            recent_lsn,
                        },
                        active_txns,
                        pass3,
                    },
                }
            }
            t => return Err(StorageError::Corrupt(format!("bad log record tag {t}"))),
        };
        if r.remaining() != 0 {
            return Err(StorageError::Corrupt(format!(
                "{} trailing bytes after log record",
                r.remaining()
            )));
        }
        Ok(rec)
    }

    /// The prev-LSN chain field, when the record has one.
    pub fn prev_lsn(&self) -> Option<Lsn> {
        match self {
            LogRecord::TxnInsert { prev_lsn, .. }
            | LogRecord::TxnDelete { prev_lsn, .. }
            | LogRecord::TxnUpdate { prev_lsn, .. }
            | LogRecord::ReorgMove { prev_lsn, .. }
            | LogRecord::ReorgSwap { prev_lsn, .. }
            | LogRecord::ReorgModify { prev_lsn, .. }
            | LogRecord::ReorgSidePtr { prev_lsn, .. } => Some(*prev_lsn),
            LogRecord::Clr { undo_next, .. } => Some(*undo_next),
            _ => None,
        }
    }

    /// The reorganization unit this record belongs to, if any.
    pub fn unit(&self) -> Option<UnitId> {
        match self {
            LogRecord::ReorgBegin { unit, .. }
            | LogRecord::ReorgMove { unit, .. }
            | LogRecord::ReorgSwap { unit, .. }
            | LogRecord::ReorgModify { unit, .. }
            | LogRecord::ReorgSidePtr { unit, .. }
            | LogRecord::ReorgEnd { unit, .. } => Some(*unit),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(rec: LogRecord) {
        let bytes = rec.encode();
        let back = LogRecord::decode(&bytes).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn round_trip_txn_records() {
        round_trip(LogRecord::TxnBegin { txn: TxnId(7) });
        round_trip(LogRecord::TxnCommit { txn: TxnId(7) });
        round_trip(LogRecord::TxnAbort { txn: TxnId(7) });
        round_trip(LogRecord::TxnInsert {
            txn: TxnId(1),
            page: PageId(2),
            key: 3,
            value: vec![4, 5, 6],
            prev_lsn: Lsn(9),
        });
        round_trip(LogRecord::TxnDelete {
            txn: TxnId(1),
            page: PageId(2),
            key: 3,
            old_value: vec![],
            prev_lsn: Lsn(9),
        });
        round_trip(LogRecord::TxnUpdate {
            txn: TxnId(1),
            page: PageId(2),
            key: 3,
            old_value: vec![1],
            new_value: vec![2, 2],
            prev_lsn: Lsn(9),
        });
        round_trip(LogRecord::Clr {
            txn: TxnId(1),
            page: PageId(2),
            reinsert: true,
            key: 3,
            value: vec![1],
            undo_next: Lsn(4),
        });
    }

    #[test]
    fn round_trip_reorg_records() {
        round_trip(LogRecord::ReorgBegin {
            unit: UnitId(3),
            kind: ReorgKind::Compact,
            base_pages: vec![PageId(1)],
            leaf_pages: vec![PageId(10), PageId(11), PageId(12)],
        });
        round_trip(LogRecord::ReorgMove {
            unit: UnitId(3),
            org: PageId(10),
            dest: PageId(11),
            payload: MovePayload::Keys(vec![1, 2, 3]),
            prev_lsn: Lsn(5),
        });
        round_trip(LogRecord::ReorgMove {
            unit: UnitId(3),
            org: PageId(10),
            dest: PageId(11),
            payload: MovePayload::Records(vec![(1, vec![9, 9]), (2, vec![])]),
            prev_lsn: Lsn(5),
        });
        round_trip(LogRecord::ReorgModify {
            unit: UnitId(3),
            base_page: PageId(1),
            old_entries: vec![(5, PageId(10)), (9, PageId(11))],
            new_entries: vec![(5, PageId(11))],
            prev_lsn: Lsn(6),
        });
        round_trip(LogRecord::ReorgSidePtr {
            unit: UnitId(3),
            page: PageId(9),
            old_left: PageId::INVALID,
            old_right: PageId(10),
            new_left: PageId::INVALID,
            new_right: PageId(11),
            prev_lsn: Lsn(7),
        });
        round_trip(LogRecord::ReorgEnd {
            unit: UnitId(3),
            largest_key: 42,
        });
    }

    #[test]
    fn round_trip_swap_carries_full_image() {
        let mut img = Box::new([0u8; PAGE_SIZE]);
        img[0] = 0xAA;
        img[PAGE_SIZE - 1] = 0xBB;
        let rec = LogRecord::ReorgSwap {
            unit: UnitId(1),
            page_a: PageId(4),
            page_b: PageId(9),
            image_a_old: img,
            prev_lsn: Lsn(2),
        };
        let bytes = rec.encode();
        assert!(bytes.len() > PAGE_SIZE); // the point of E6: swaps are log-expensive
        round_trip(rec);
    }

    #[test]
    fn round_trip_smo_and_pass3() {
        let img = Box::new([7u8; PAGE_SIZE]);
        round_trip(LogRecord::Smo {
            images: vec![(PageId(1), img)],
            new_anchor: Some((PageId(5), 3)),
        });
        round_trip(LogRecord::Smo {
            images: vec![],
            new_anchor: None,
        });
        round_trip(LogRecord::Pass3Stable {
            state: Pass3State {
                stable_key: 99,
                new_root: PageId(3),
            },
        });
        round_trip(LogRecord::Pass3Switch {
            old_root: PageId(1),
            new_root: PageId(2),
            new_height: 4,
        });
    }

    #[test]
    fn round_trip_checkpoint() {
        round_trip(LogRecord::Checkpoint {
            data: CheckpointData::default(),
        });
        round_trip(LogRecord::Checkpoint {
            data: CheckpointData {
                reorg: ReorgTableSnapshot {
                    lk: Some(10),
                    begin_lsn: Some(Lsn(4)),
                    recent_lsn: Some(Lsn(8)),
                },
                active_txns: vec![(TxnId(1), Lsn(3)), (TxnId(2), Lsn(5))],
                pass3: Some(Pass3State {
                    stable_key: 7,
                    new_root: PageId(20),
                }),
            },
        });
    }

    #[test]
    fn decode_rejects_bad_tag_and_trailing_bytes() {
        assert!(LogRecord::decode(&[200]).is_err());
        let mut bytes = LogRecord::TxnBegin { txn: TxnId(1) }.encode();
        bytes.push(0);
        assert!(LogRecord::decode(&bytes).is_err());
    }

    #[test]
    fn keys_payload_is_much_smaller_than_records() {
        let keys = LogRecord::ReorgMove {
            unit: UnitId(1),
            org: PageId(1),
            dest: PageId(2),
            payload: MovePayload::Keys((0..50).collect()),
            prev_lsn: Lsn(0),
        };
        let recs = LogRecord::ReorgMove {
            unit: UnitId(1),
            org: PageId(1),
            dest: PageId(2),
            payload: MovePayload::Records((0..50).map(|k| (k, vec![0u8; 64])).collect()),
            prev_lsn: Lsn(0),
        };
        assert!(recs.encode().len() > keys.encode().len() * 5);
    }

    #[test]
    fn payload_helpers() {
        let p = MovePayload::Records(vec![(3, vec![1]), (1, vec![2])]);
        assert_eq!(p.keys(), vec![3, 1]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(MovePayload::Keys(vec![]).is_empty());
    }

    #[test]
    fn unit_and_prev_lsn_accessors() {
        let rec = LogRecord::ReorgMove {
            unit: UnitId(9),
            org: PageId(1),
            dest: PageId(2),
            payload: MovePayload::Keys(vec![]),
            prev_lsn: Lsn(44),
        };
        assert_eq!(rec.unit(), Some(UnitId(9)));
        assert_eq!(rec.prev_lsn(), Some(Lsn(44)));
        assert!(rec.is_reorg());
        assert_eq!(LogRecord::TxnBegin { txn: TxnId(1) }.unit(), None);
    }

    fn arb_payload() -> impl Strategy<Value = MovePayload> {
        prop_oneof![
            prop::collection::vec(any::<u64>(), 0..64).prop_map(MovePayload::Keys),
            prop::collection::vec(
                (any::<u64>(), prop::collection::vec(any::<u8>(), 0..32)),
                0..32
            )
            .prop_map(MovePayload::Records),
        ]
    }

    /// A strategy over (almost) the whole record space, including images.
    fn arb_record() -> impl Strategy<Value = LogRecord> {
        let img = prop::collection::vec(any::<u8>(), PAGE_SIZE..=PAGE_SIZE).prop_map(
            |v| -> Box<[u8; PAGE_SIZE]> {
                let mut b = Box::new([0u8; PAGE_SIZE]);
                b.copy_from_slice(&v);
                b
            },
        );
        prop_oneof![
            any::<u64>().prop_map(|t| LogRecord::TxnBegin { txn: TxnId(t) }),
            any::<u64>().prop_map(|t| LogRecord::TxnCommit { txn: TxnId(t) }),
            (
                any::<u64>(),
                any::<u32>(),
                any::<u64>(),
                prop::collection::vec(any::<u8>(), 0..64),
                any::<u64>()
            )
                .prop_map(|(t, p, k, v, l)| LogRecord::TxnInsert {
                    txn: TxnId(t),
                    page: PageId(p),
                    key: k,
                    value: v,
                    prev_lsn: Lsn(l),
                }),
            (
                any::<u64>(),
                any::<u32>(),
                any::<bool>(),
                any::<u64>(),
                prop::collection::vec(any::<u8>(), 0..64),
                any::<u64>()
            )
                .prop_map(|(t, p, r, k, v, l)| LogRecord::Clr {
                    txn: TxnId(t),
                    page: PageId(p),
                    reinsert: r,
                    key: k,
                    value: v,
                    undo_next: Lsn(l),
                }),
            (
                any::<u64>(),
                any::<u32>(),
                any::<u32>(),
                arb_payload(),
                any::<u64>()
            )
                .prop_map(|(u, o, d, pl, l)| LogRecord::ReorgMove {
                    unit: UnitId(u),
                    org: PageId(o),
                    dest: PageId(d),
                    payload: pl,
                    prev_lsn: Lsn(l),
                }),
            (any::<u64>(), any::<u32>(), any::<u32>(), img, any::<u64>()).prop_map(
                |(u, a, b, i, l)| LogRecord::ReorgSwap {
                    unit: UnitId(u),
                    page_a: PageId(a),
                    page_b: PageId(b),
                    image_a_old: i,
                    prev_lsn: Lsn(l),
                }
            ),
            (
                any::<u64>(),
                any::<u32>(),
                prop::collection::vec((any::<u64>(), any::<u32>().prop_map(PageId)), 0..32),
                prop::collection::vec((any::<u64>(), any::<u32>().prop_map(PageId)), 0..32),
                any::<u64>()
            )
                .prop_map(|(u, b, old, new, l)| LogRecord::ReorgModify {
                    unit: UnitId(u),
                    base_page: PageId(b),
                    old_entries: old,
                    new_entries: new,
                    prev_lsn: Lsn(l),
                }),
            (any::<u64>(), any::<u32>()).prop_map(|(k, r)| LogRecord::Pass3Stable {
                state: Pass3State {
                    stable_key: k,
                    new_root: PageId(r)
                },
            }),
        ]
    }

    proptest! {
        #[test]
        fn prop_any_record_round_trips(rec in arb_record()) {
            let bytes = rec.encode();
            let back = LogRecord::decode(&bytes).unwrap();
            prop_assert_eq!(rec, back);
        }

        #[test]
        fn prop_truncated_records_never_panic(rec in arb_record(), cut in any::<prop::sample::Index>()) {
            let bytes = rec.encode();
            let cut = cut.index(bytes.len().max(1));
            let _ = LogRecord::decode(&bytes[..cut]);
        }

        #[test]
        fn prop_round_trip_move(unit in any::<u64>(), org in any::<u32>(), dest in any::<u32>(),
                                keys in prop::collection::vec(any::<u64>(), 0..100),
                                prev in any::<u64>()) {
            round_trip(LogRecord::ReorgMove {
                unit: UnitId(unit),
                org: PageId(org),
                dest: PageId(dest),
                payload: MovePayload::Keys(keys),
                prev_lsn: Lsn(prev),
            });
        }

        #[test]
        fn prop_round_trip_insert(txn in any::<u64>(), page in any::<u32>(), key in any::<u64>(),
                                  value in prop::collection::vec(any::<u8>(), 0..256),
                                  prev in any::<u64>()) {
            round_trip(LogRecord::TxnInsert {
                txn: TxnId(txn),
                page: PageId(page),
                key,
                value,
                prev_lsn: Lsn(prev),
            });
        }

        #[test]
        fn prop_decode_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
            let _ = LogRecord::decode(&bytes);
        }
    }
}
