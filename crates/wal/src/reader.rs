//! Byte-level WAL reader: one parser for the `[len: u32 LE][frame]` on-disk
//! format, shared by [`crate::LogManager::open_file`] and the WAL linter so
//! every consumer truncates a torn tail identically.
//!
//! A *torn tail* is whatever trails the last intact record: a partial length
//! prefix, a frame cut short by the crash, or a frame whose bytes no longer
//! decode. [`LogReader::scan`] never fails — it returns the clean prefix plus
//! a description of the tail, and the caller decides whether a tail is an
//! expected crash artifact (recovery) or worth a finding (the linter).

use crate::record::LogRecord;
use obr_storage::Lsn;

/// Why the scan stopped before the end of the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than four bytes remained: a partial length prefix.
    TruncatedLength,
    /// The length prefix promises more bytes than the input holds.
    TruncatedFrame,
    /// The frame bytes are complete but do not decode to a record.
    Undecodable,
}

/// The tail that follows the last intact record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the intact prefix ends (= where the tail starts).
    pub offset: u64,
    /// How the tail is broken.
    pub reason: TornReason,
}

/// Result of scanning a byte image of a WAL file.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Encoded frames of the intact prefix, in order.
    pub frames: Vec<Vec<u8>>,
    /// Decoded records of the intact prefix; `records[i]` has LSN
    /// `first_lsn + i` for whatever base LSN the caller assigns.
    pub records: Vec<LogRecord>,
    /// The torn tail, when the input does not end exactly at a record
    /// boundary.
    pub torn: Option<TornTail>,
    /// Byte length of the intact prefix (where a repairing caller should
    /// truncate the file).
    pub good_end: u64,
}

/// Stateless parser for the WAL's on-disk byte format.
pub struct LogReader;

impl LogReader {
    /// Scan `bytes`, returning every intact `[len][frame]` record and a
    /// description of any torn tail. Never panics and never fails: arbitrary
    /// byte truncation (or trailing garbage) yields a clean prefix.
    pub fn scan(bytes: &[u8]) -> ScanOutcome {
        let mut frames = Vec::new();
        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut torn = None;
        loop {
            if pos == bytes.len() {
                break;
            }
            if pos + 4 > bytes.len() {
                torn = Some(TornTail {
                    offset: pos as u64,
                    reason: TornReason::TruncatedLength,
                });
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if pos + 4 + len > bytes.len() {
                torn = Some(TornTail {
                    offset: pos as u64,
                    reason: TornReason::TruncatedFrame,
                });
                break;
            }
            let frame = &bytes[pos + 4..pos + 4 + len];
            let Ok(rec) = LogRecord::decode(frame) else {
                torn = Some(TornTail {
                    offset: pos as u64,
                    reason: TornReason::Undecodable,
                });
                break;
            };
            frames.push(frame.to_vec());
            records.push(rec);
            pos += 4 + len;
        }
        ScanOutcome {
            good_end: if let Some(t) = &torn {
                t.offset
            } else {
                pos as u64
            },
            frames,
            records,
            torn,
        }
    }

    /// Encode `frames` back into the on-disk byte format. The inverse of
    /// [`Self::scan`] over an un-torn input.
    pub fn encode_frames<'a>(frames: impl IntoIterator<Item = &'a [u8]>) -> Vec<u8> {
        let mut out = Vec::new();
        for frame in frames {
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(frame);
        }
        out
    }

    /// The LSN of the last intact record when the first frame carries
    /// `first_lsn` (convenience for callers reasoning about prefixes).
    pub fn last_lsn(outcome: &ScanOutcome, first_lsn: Lsn) -> Lsn {
        if outcome.records.is_empty() {
            Lsn(first_lsn.0.saturating_sub(1))
        } else {
            Lsn(first_lsn.0 + outcome.records.len() as u64 - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TxnId;

    fn sample_frames(n: u64) -> Vec<Vec<u8>> {
        (1..=n)
            .map(|i| LogRecord::TxnBegin { txn: TxnId(i) }.encode())
            .collect()
    }

    #[test]
    fn round_trips_clean_input() {
        let frames = sample_frames(5);
        let bytes = LogReader::encode_frames(frames.iter().map(Vec::as_slice));
        let out = LogReader::scan(&bytes);
        assert_eq!(out.frames, frames);
        assert_eq!(out.records.len(), 5);
        assert!(out.torn.is_none());
        assert_eq!(out.good_end, bytes.len() as u64);
    }

    #[test]
    fn every_byte_truncation_yields_a_clean_prefix() {
        let frames = sample_frames(4);
        let bytes = LogReader::encode_frames(frames.iter().map(Vec::as_slice));
        for cut in 0..bytes.len() {
            let out = LogReader::scan(&bytes[..cut]);
            // The intact prefix must match the original frames exactly.
            assert_eq!(out.frames, frames[..out.frames.len()].to_vec());
            // Either the cut landed on a boundary, or the tail is described.
            if out.torn.is_none() {
                assert_eq!(out.good_end, cut as u64);
            } else {
                assert!(out.good_end <= cut as u64);
            }
        }
    }

    #[test]
    fn garbage_tail_is_undecodable() {
        let frames = sample_frames(2);
        let mut bytes = LogReader::encode_frames(frames.iter().map(Vec::as_slice));
        // Append a well-framed but meaningless record.
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF]);
        let out = LogReader::scan(&bytes);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.torn.map(|t| t.reason), Some(TornReason::Undecodable));
    }

    #[test]
    fn last_lsn_tracks_prefix_length() {
        let frames = sample_frames(3);
        let bytes = LogReader::encode_frames(frames.iter().map(Vec::as_slice));
        let out = LogReader::scan(&bytes);
        assert_eq!(LogReader::last_lsn(&out, Lsn(1)), Lsn(3));
        let empty = LogReader::scan(&[]);
        assert_eq!(LogReader::last_lsn(&empty, Lsn(1)), Lsn(0));
    }
}
