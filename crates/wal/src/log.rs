//! The log manager: an append-only sequence of encoded records with a
//! durability watermark, made durable by **group commit**.
//!
//! Records live in memory as encoded frames; [`LogManager::flush_to`] moves
//! the durability watermark forward (the buffer pool calls it through the
//! [`obr_storage::WalFlush`] hook before writing any dirty page), and
//! [`LogManager::simulate_crash`] discards every record past the watermark —
//! the volatile tail a power failure would lose.
//!
//! # Group commit
//!
//! Appending and forcing are split across different locks so neither ever
//! waits on the other's I/O:
//!
//! * **append** takes the short `mem` critical section (assign an LSN, push
//!   the encoded frame, bump counters) and returns — it never blocks on a
//!   concurrent fsync.
//! * **flush_to** registers its target LSN and elects one caller the
//!   *flusher* (a flag guarded by the `dur` mutex). The flusher writes and
//!   fsyncs one batch covering *every* target registered so far, publishes
//!   the new watermark, and wakes the waiters parked on the condvar. A
//!   waiter whose LSN the batch covered returns without touching the file:
//!   K concurrent committers cost at most K — and typically ~2 — fsyncs.
//!
//! No lock is ever held across `write`+`fsync` except the `io` mutex, which
//! only the elected flusher (or an exclusive maintenance operation such as
//! [`LogManager::compact_file`]) touches. The pre-group-commit behaviour —
//! one mutex held across the entire append/flush path *including the fsync*
//! — is kept behind [`LogManager::set_group_commit`]`(false)` as the A/B
//! baseline for the concurrency benchmark.
//!
//! # Segmented durability
//!
//! A durable log opened with [`LogManager::open_dir`] is a directory of
//! fixed-size-threshold segment files (see [`crate::segment`]) instead of
//! one ever-growing file. The flusher appends to the *active* segment;
//! when a batch pushes it past the size threshold the segment is *sealed*
//! (a new active file is created — sealed files are never written again)
//! and becomes shippable to a replica. [`LogManager::truncate_before`]
//! rounds the low-water mark down to a segment boundary, and
//! [`LogManager::recycle_segments`] deletes — oldest first — every sealed
//! segment that lies wholly below it, which is how the paper's §5
//! checkpoint low-water mark turns into a bounded on-disk footprint.
//! Torn-tail truncation applies only to the active segment on reopen; a
//! torn record inside a sealed segment is corruption.
//!
//! Per-kind byte accounting feeds experiment E6 (reorganization log volume
//! under the three logging strategies).

use obr_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use obr_obs::{Counter, Gauge, Histogram, Registry};
use obr_sync::{Condvar, Mutex};

use obr_storage::{Lsn, StorageError, StorageResult, WalFlush};

use crate::record::LogRecord;
use crate::segment::{self, SegmentMeta};

/// Byte/record accounting, split by record kind.
#[derive(Debug, Clone, Default)]
pub struct LogStats {
    /// Total records appended.
    pub records: u64,
    /// Total encoded bytes appended.
    pub bytes: u64,
    /// Records appended by the reorganizer.
    pub reorg_records: u64,
    /// Bytes appended by the reorganizer.
    pub reorg_bytes: u64,
    /// Per-kind (records, bytes).
    pub by_kind: HashMap<&'static str, (u64, u64)>,
}

impl LogStats {
    /// Account one encoded record.
    fn absorb(&mut self, frame: &[u8], rec: &LogRecord) {
        self.records += 1;
        self.bytes += frame.len() as u64;
        if rec.is_reorg() {
            self.reorg_records += 1;
            self.reorg_bytes += frame.len() as u64;
        }
        let e = self.by_kind.entry(rec.kind_name()).or_insert((0, 0));
        e.0 += 1;
        e.1 += frame.len() as u64;
    }

    /// Difference against an earlier snapshot (kinds present in `self`).
    pub fn since(&self, earlier: &LogStats) -> LogStats {
        let mut by_kind = HashMap::new();
        for (k, &(r, b)) in &self.by_kind {
            let (er, eb) = earlier.by_kind.get(k).copied().unwrap_or((0, 0));
            by_kind.insert(*k, (r - er, b - eb));
        }
        LogStats {
            records: self.records - earlier.records,
            bytes: self.bytes - earlier.bytes,
            reorg_records: self.reorg_records - earlier.reorg_records,
            reorg_bytes: self.reorg_bytes - earlier.reorg_bytes,
            by_kind,
        }
    }
}

/// Durability-path counters: how much batching group commit achieved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// `flush_to`/`flush_all` calls that found work to do.
    pub flush_calls: u64,
    /// Physical `fsync`s issued (file-backed logs only).
    pub syncs: u64,
    /// Watermark advances (batches), including memory-only logs.
    pub batches: u64,
    /// Times a committer parked behind an in-flight flush instead of
    /// issuing its own.
    pub group_waits: u64,
}

impl SyncStats {
    /// Counter deltas relative to an earlier snapshot.
    pub fn since(&self, earlier: &SyncStats) -> SyncStats {
        SyncStats {
            flush_calls: self.flush_calls - earlier.flush_calls,
            syncs: self.syncs - earlier.syncs,
            batches: self.batches - earlier.batches,
            group_waits: self.group_waits - earlier.group_waits,
        }
    }
}

/// The in-memory log: what `append` touches. Its critical sections are a
/// few vector pushes — never I/O.
struct LogMem {
    /// Encoded frames; frame `i` has LSN `first_lsn + i`.
    frames: Vec<Vec<u8>>,
    /// LSN of `frames[0]` (moves up when the log is truncated).
    first_lsn: Lsn,
    /// Next LSN to assign.
    next_lsn: Lsn,
    stats: LogStats,
}

/// Flusher election state. `flushing` is the baton: exactly one thread at a
/// time runs the write+fsync path; `requested` accumulates the highest LSN
/// any committer has asked to be made durable.
struct DurControl {
    flushing: bool,
    requested: Lsn,
}

/// One immutable, fully-fsynced segment file (shippable to a replica).
struct SealedSegment {
    /// LSN of the segment's first record.
    first_lsn: Lsn,
    /// LSN of the segment's last record (inclusive).
    end_lsn: Lsn,
    /// Backing file path.
    path: PathBuf,
    /// On-disk byte size (frames + length prefixes).
    bytes: u64,
}

/// The backing file. Only the elected flusher (or an exclusive maintenance
/// path holding the flusher baton) locks this, so the lock is uncontended —
/// it exists to keep `File` mutation safe, not to serialize committers.
struct IoState {
    /// Backing file, when the log is durable: the active segment of a
    /// segmented log, or the single file of a legacy log. Frames below
    /// `file_next` have been appended and fsynced.
    file: Option<File>,
    /// Next LSN whose frame still needs writing.
    file_next: Lsn,
    /// Segment directory; `None` for memory-only and legacy single-file
    /// logs (which never seal or recycle).
    dir: Option<PathBuf>,
    /// Seal threshold: once the active segment reaches this many bytes,
    /// the batch that crossed the line seals it.
    seg_bytes: u64,
    /// First LSN of the active segment.
    active_first: Lsn,
    /// Bytes written to the active segment so far.
    active_bytes: u64,
    /// Sealed segments, ascending by `first_lsn`.
    sealed: Vec<SealedSegment>,
}

impl IoState {
    /// A legacy (single-file or memory-only) io state: never seals.
    /// `active_bytes` must equal the backing file's current length — it is
    /// the known-good offset flush errors roll the file back to.
    fn plain(file: Option<File>, file_next: Lsn, active_bytes: u64) -> IoState {
        IoState {
            file,
            file_next,
            dir: None,
            seg_bytes: u64::MAX,
            active_first: Lsn(1),
            active_bytes,
            sealed: Vec::new(),
        }
    }
}

/// The write-ahead log.
///
/// ```
/// use obr_wal::{LogManager, LogRecord, TxnId};
///
/// let log = LogManager::new();
/// let l1 = log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
/// log.append(&LogRecord::TxnCommit { txn: TxnId(1) }); // volatile tail
/// log.flush_to(l1).unwrap();
/// // A crash loses everything past the durability watermark.
/// assert_eq!(log.simulate_crash(), 1);
/// assert_eq!(log.read(l1).unwrap(), Some(LogRecord::TxnBegin { txn: TxnId(1) }));
/// ```
pub struct LogManager {
    mem: Mutex<LogMem>,
    dur: Mutex<DurControl>,
    dur_cv: Condvar,
    io: Mutex<IoState>,
    /// Highest durable LSN — readable without any lock.
    durable: AtomicU64,
    group_commit: AtomicBool,
    /// Set when a flush I/O failure left the backing file in a state a
    /// retry cannot safely build on (see [`Self::poison`]). Once set,
    /// every durability call fails; appends stay available so aborts can
    /// still be recorded in memory.
    poisoned: AtomicBool,
    metrics: WalMetrics,
}

/// Per-manager metric handles: the durability-path counters behind
/// [`SyncStats`] plus the append-path counters and the durable-watermark
/// lag gauge. [`LogManager::register_metrics`] publishes these same
/// handles into a database's [`Registry`].
#[derive(Debug, Default)]
struct WalMetrics {
    flush_calls: Counter,
    syncs: Counter,
    batches: Counter,
    group_waits: Counter,
    appends: Counter,
    append_bytes: Counter,
    batch_records: Histogram,
    durable_lag: Gauge,
    /// Live segment files (sealed + active); 0 for non-segmented logs.
    segments: Gauge,
    /// Segments sealed since open.
    seals: Counter,
    /// Sealed segments deleted by recycling since open.
    recycled: Counter,
}

impl Default for LogManager {
    fn default() -> Self {
        Self::new()
    }
}

/// Test-only sabotage switch (model builds only): when
/// `OBR_BUG_EARLY_WATERMARK=1`, the elected flusher publishes the durable
/// watermark *before* writing and fsyncing the batch. This exists solely
/// so the interleaving explorer can prove it catches torn-watermark
/// ordering bugs; it is never set outside `obr-race`'s teeth tests.
#[cfg(obr_model)]
fn sabotage_early_watermark() -> bool {
    std::env::var_os("OBR_BUG_EARLY_WATERMARK").is_some_and(|v| v == "1")
}

impl LogManager {
    fn assemble(mem: LogMem, file: Option<File>, durable: Lsn, file_bytes: u64) -> LogManager {
        let file_next = Lsn(durable.0 + 1);
        Self::assemble_io(mem, IoState::plain(file, file_next, file_bytes), durable)
    }

    fn assemble_io(mem: LogMem, io: IoState, durable: Lsn) -> LogManager {
        let log = LogManager {
            mem: Mutex::named(mem, "wal.mem"),
            dur: Mutex::named(
                DurControl {
                    flushing: false,
                    requested: durable,
                },
                "wal.dur",
            ),
            dur_cv: Condvar::new(),
            io: Mutex::named(io, "wal.io"),
            durable: AtomicU64::new(durable.0),
            group_commit: AtomicBool::new(true),
            poisoned: AtomicBool::new(false),
            metrics: WalMetrics::default(),
        };
        {
            let io = log.io.lock();
            if io.dir.is_some() {
                log.metrics.segments.set(io.sealed.len() as u64 + 1);
            }
        }
        log
    }

    /// Publish this log's counters into `reg` under the canonical `wal_*`
    /// names (see DESIGN.md "Observability"). The registry adopts the live
    /// handles, so snapshots read the same atomics [`Self::sync_stats`]
    /// reads; `wal_batches_per_fsync` is derived by consumers as
    /// `wal_batches / wal_syncs`.
    pub fn register_metrics(&self, reg: &Registry) {
        reg.register_counter("wal_flush_calls", &self.metrics.flush_calls);
        reg.register_counter("wal_syncs", &self.metrics.syncs);
        reg.register_counter("wal_batches", &self.metrics.batches);
        reg.register_counter("wal_group_waits", &self.metrics.group_waits);
        reg.register_counter("wal_appends", &self.metrics.appends);
        reg.register_counter("wal_append_bytes", &self.metrics.append_bytes);
        reg.register_histogram("wal_batch_records", &self.metrics.batch_records);
        reg.register_gauge("wal_durable_lag", &self.metrics.durable_lag);
        reg.register_gauge("wal_segments", &self.metrics.segments);
        reg.register_counter("wal_segment_seals", &self.metrics.seals);
        reg.register_counter("wal_segments_recycled", &self.metrics.recycled);
    }

    /// Create an empty log. LSNs start at 1; [`Lsn::ZERO`] means "none".
    pub fn new() -> LogManager {
        Self::assemble(
            LogMem {
                frames: Vec::new(),
                first_lsn: Lsn(1),
                next_lsn: Lsn(1),
                stats: LogStats::default(),
            },
            None,
            Lsn::ZERO,
            0,
        )
    }

    /// Open a durable log backed by `path`. Existing frames are read back
    /// (they are all durable); appends reach the file on [`Self::flush_to`].
    ///
    /// On-disk format: a sequence of `[len: u32 LE][frame bytes]` records; a
    /// torn tail (incomplete final record after a crash) is truncated away.
    pub fn open_file(path: &Path) -> StorageResult<LogManager> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        // One torn-tail policy for every consumer: the shared byte-level
        // reader returns the intact prefix; whatever trails it (a partial
        // length, a cut frame, or an undecodable one) is truncated away.
        let scan = crate::reader::LogReader::scan(&buf);
        let mut stats = LogStats::default();
        for (frame, rec) in scan.frames.iter().zip(scan.records.iter()) {
            stats.absorb(frame, rec);
        }
        let frames = scan.frames;
        file.set_len(scan.good_end)?;
        file.seek(SeekFrom::End(0))?;
        let n = frames.len() as u64;
        Ok(Self::assemble(
            LogMem {
                frames,
                first_lsn: Lsn(1),
                next_lsn: Lsn(n + 1),
                stats,
            },
            Some(file),
            Lsn(n),
            scan.good_end,
        ))
    }

    /// Open (or create) a segmented durable log in directory `dir` with a
    /// seal threshold of `seg_bytes` bytes per segment.
    ///
    /// Reopen semantics enforce the segment invariants (see
    /// [`crate::segment`]): segments must form a contiguous LSN run (a gap
    /// is [`StorageError::Corrupt`]); every sealed segment — all but the
    /// last — must parse clean to its end (a torn record there is
    /// corruption, because seals only happen after a full fsync); the
    /// active (last) segment gets the usual torn-tail truncation.
    pub fn open_dir(dir: &Path, seg_bytes: u64) -> StorageResult<LogManager> {
        std::fs::create_dir_all(dir)?;
        let seg_bytes = seg_bytes.max(1);
        let mut listed = segment::list_segments(dir)?;
        if listed.is_empty() {
            let path = dir.join(segment::segment_file_name(Lsn(1)));
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)?;
            segment::sync_dir(dir);
            listed.push((Lsn(1), path));
        }
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut stats = LogStats::default();
        let mut sealed = Vec::new();
        let first_lsn = listed[0].0;
        let mut expect = first_lsn;
        let last_idx = listed.len() - 1;
        let mut active: Option<(File, Lsn, u64)> = None;
        for (i, (seg_first, path)) in listed.into_iter().enumerate() {
            if seg_first != expect {
                return Err(StorageError::Corrupt(format!(
                    "WAL segment gap: expected first LSN {expect:?}, found {seg_first:?} ({})",
                    path.display()
                )));
            }
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .truncate(false)
                .open(&path)?;
            let mut buf = Vec::new();
            file.read_to_end(&mut buf)?;
            let scan = crate::reader::LogReader::scan(&buf);
            if i < last_idx {
                if let Some(t) = scan.torn {
                    return Err(StorageError::Corrupt(format!(
                        "torn record at byte {} of sealed WAL segment {} ({:?}): \
                         seals require a completed fsync, so this is corruption, \
                         not a crash artifact",
                        t.offset,
                        path.display(),
                        t.reason
                    )));
                }
                let end = Lsn(seg_first.0 + scan.frames.len() as u64 - 1);
                if scan.frames.is_empty() {
                    return Err(StorageError::Corrupt(format!(
                        "empty sealed WAL segment {}",
                        path.display()
                    )));
                }
                sealed.push(SealedSegment {
                    first_lsn: seg_first,
                    end_lsn: end,
                    path,
                    bytes: scan.good_end,
                });
            } else {
                // Active segment: truncate the torn tail a crash left.
                file.set_len(scan.good_end)?;
                file.seek(SeekFrom::End(0))?;
                active = Some((file, seg_first, scan.good_end));
            }
            expect = Lsn(expect.0 + scan.frames.len() as u64);
            for (frame, rec) in scan.frames.iter().zip(scan.records.iter()) {
                stats.absorb(frame, rec);
            }
            frames.extend(scan.frames);
        }
        let (file, active_first, active_bytes) = active.expect("at least one segment exists");
        let durable = Lsn(first_lsn.0 + frames.len() as u64 - 1);
        Ok(Self::assemble_io(
            LogMem {
                next_lsn: Lsn(durable.0 + 1),
                frames,
                first_lsn,
                stats,
            },
            IoState {
                file: Some(file),
                file_next: Lsn(durable.0 + 1),
                dir: Some(dir.to_path_buf()),
                seg_bytes,
                active_first,
                active_bytes,
                sealed,
            },
            durable,
        ))
    }

    /// Enable or disable group commit. Disabled, [`Self::flush_to`] reverts
    /// to the historical single-lock path — the append mutex held across
    /// the whole write+fsync — kept only as a benchmark baseline.
    pub fn set_group_commit(&self, enabled: bool) {
        self.group_commit.store(enabled, Ordering::Release);
    }

    /// Whether group commit is enabled (the default).
    pub fn group_commit_enabled(&self) -> bool {
        self.group_commit.load(Ordering::Acquire)
    }

    /// Mark the log failed: every subsequent durability call
    /// ([`Self::flush_to`], [`Self::flush_all`], [`Self::append_force`])
    /// returns an error without touching the file, and the durable
    /// watermark never moves again. The manager poisons itself when a
    /// flush I/O failure leaves the active file in a state no retry can
    /// safely build on (a partial write it could not roll back, or a
    /// failed fsync — which the kernel may have answered by dropping dirty
    /// pages, so re-fsyncing can claim durability that does not exist).
    /// Public so fault-injection tests can force the failure path.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// True once [`Self::poison`] has run (directly or via an
    /// unrecoverable flush failure).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    fn poisoned_err() -> StorageError {
        StorageError::Io(std::io::Error::other(
            "WAL poisoned: an earlier flush failure left the log file in an \
             unknown state; no further flushes are possible",
        ))
    }

    /// Append a record; returns its LSN. Not yet durable. The critical
    /// section is memory-only: appends never wait behind an fsync.
    // protocol: wal-append
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let bytes = rec.encode();
        self.metrics.appends.inc();
        self.metrics.append_bytes.add(bytes.len() as u64);
        let mut g = self.mem.lock();
        let lsn = g.next_lsn;
        g.next_lsn = lsn.next();
        g.stats.absorb(&bytes, rec);
        g.frames.push(bytes);
        drop(g);
        // Un-flushed tail behind the durable watermark; the peak is the
        // worst backlog an fsync ever had to cover.
        self.metrics
            .durable_lag
            .set(lsn.0.saturating_sub(self.durable.load(Ordering::Acquire)));
        lsn
    }

    /// Append and immediately force to the durability watermark.
    // protocol: wal-append
    pub fn append_force(&self, rec: &LogRecord) -> StorageResult<Lsn> {
        let lsn = self.append(rec);
        self.flush_to(lsn)?;
        Ok(lsn)
    }

    /// Make the log durable through `lsn`. Concurrent callers are batched:
    /// one of them writes and fsyncs a single run covering every pending
    /// target, the rest park until `durable_lsn >= lsn`.
    ///
    /// On an I/O error the watermark does not move, the flusher baton is
    /// released (waking any parked committers, who will re-elect and
    /// retry — each either succeeds or surfaces its own error), and the
    /// error is returned so the caller can decide whether the operation
    /// that needed durability may proceed. Before the baton is released a
    /// failed write rolls the active file back to its last known-good
    /// offset, so the retry re-appends the same frames from a clean record
    /// boundary rather than duplicating them after partial bytes; when
    /// that rollback is impossible (or the fsync itself failed) the log is
    /// [poisoned](Self::poison) and every later flush fails fast.
    pub fn flush_to(&self, lsn: Lsn) -> StorageResult<()> {
        let cap = {
            let g = self.mem.lock();
            Lsn(g.next_lsn.0 - 1)
        };
        let target = lsn.min(cap);
        if target == Lsn::ZERO || self.durable.load(Ordering::Acquire) >= target.0 {
            return Ok(());
        }
        if self.poisoned.load(Ordering::Acquire) {
            return Err(Self::poisoned_err());
        }
        self.metrics.flush_calls.inc();
        if !self.group_commit.load(Ordering::Acquire) {
            return self.legacy_flush(target);
        }
        let mut d = self.dur.lock();
        if d.requested < target {
            d.requested = target;
        }
        loop {
            if self.durable.load(Ordering::Acquire) >= target.0 {
                // A batch in flight when we arrived already covered us.
                return Ok(());
            }
            if !d.flushing {
                break;
            }
            self.metrics.group_waits.inc();
            self.dur_cv.wait(&mut d);
        }
        // Elected flusher: take the baton, write one batch covering every
        // target registered so far, with no lock held across the I/O that
        // an append or another committer's registration would need.
        d.flushing = true;
        let batch = d.requested;
        drop(d);
        #[cfg(obr_model)]
        if sabotage_early_watermark() {
            // Injected ordering bug (teeth test only): publish the
            // durable watermark BEFORE the data hits the file. Readers
            // observing `durable_lsn` between the store and the fsync see
            // a watermark covering bytes that do not exist yet.
            self.durable.fetch_max(batch.0, Ordering::AcqRel);
        }
        let result = self.write_batch(batch);
        if let Ok(batch) = result {
            self.durable.fetch_max(batch.0, Ordering::AcqRel);
        }
        let mut d = self.dur.lock();
        d.flushing = false;
        self.dur_cv.notify_all();
        drop(d);
        result.map(|_| ())
    }

    /// True when every LSN at or below the published durable watermark has
    /// actually been written to the log file (`durable < file_next`).
    /// Invariant readers (and the model explorer) use this to detect a
    /// torn watermark publication; memory-backed logs trivially satisfy
    /// it.
    pub fn durable_is_written(&self) -> bool {
        let io = self.io.lock();
        if io.file.is_none() {
            return true;
        }
        self.durable.load(Ordering::Acquire) < io.file_next.0
    }

    /// Write and fsync frames `(file_next..=batch]`, returning the LSN the
    /// log is now durable through. Caller must hold the flusher baton.
    /// Locks are taken one at a time: `io` to learn the file position, `mem`
    /// (briefly) to copy out the frames, `io` again for the write+fsync —
    /// the append path stays runnable throughout. An I/O failure leaves
    /// `file_next` (and therefore the durable watermark) unmoved.
    fn write_batch(&self, batch: Lsn) -> StorageResult<Lsn> {
        let (has_file, file_next) = {
            let io = self.io.lock();
            (io.file.is_some(), io.file_next)
        };
        let (buf, batch) = {
            let m = self.mem.lock();
            // Re-clamp: a concurrent crash simulation may have shrunk the
            // log since the target was registered.
            let batch = batch.min(Lsn(m.next_lsn.0 - 1));
            let mut buf = Vec::new();
            if has_file && batch >= file_next {
                let lo = (file_next.0 - m.first_lsn.0) as usize;
                let hi = (batch.0 + 1 - m.first_lsn.0) as usize;
                for frame in &m.frames[lo..hi] {
                    buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
                    buf.extend_from_slice(frame);
                }
            }
            (buf, batch)
        };
        if !buf.is_empty() {
            let mut io = self.io.lock();
            self.write_to_active(&mut io, &buf, batch)?;
        }
        self.metrics.batches.inc();
        self.metrics.durable_lag.set(0);
        Ok(batch)
    }

    /// Append `buf` (frames through `batch`) to the active file, fsync it,
    /// and — for segmented logs — seal the active segment if the write
    /// pushed it past the size threshold. Caller holds the `io` lock and
    /// the flusher baton (or, on the legacy path, the `mem` lock, which is
    /// equally exclusive with other writers).
    fn write_to_active(&self, io: &mut IoState, buf: &[u8], batch: Lsn) -> StorageResult<()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(Self::poisoned_err());
        }
        let file_next = io.file_next;
        // The last offset known to be fully written AND fsynced: a failed
        // write must roll the file back here, or a retry from the unchanged
        // `file_next` would append duplicate frames after the partial bytes
        // — and LSNs are positional, so a reopen would misnumber everything
        // past them.
        let good_len = io.active_bytes;
        let file = io
            .file
            .as_mut()
            .ok_or_else(|| StorageError::Corrupt("write_to_active on memory-only log".into()))?;
        if let Err(e) = file.write_all(buf) {
            // An unknown prefix of `buf` is in the file and the cursor sits
            // somewhere inside it. Restore the known-good length and
            // position so the documented retry path (re-elected flusher,
            // same `file_next`) starts from a clean record boundary. If the
            // restore itself fails the file state is unknowable: poison.
            if file.set_len(good_len).is_err() || file.seek(SeekFrom::Start(good_len)).is_err() {
                self.poison();
            }
            return Err(e.into());
        }
        if let Err(e) = file.sync_data() {
            // A failed fsync may have dropped dirty pages while marking
            // them clean, so a retried fsync can report success without the
            // bytes being durable. No retry is safe after this: poison.
            self.poison();
            return Err(e.into());
        }
        let covered = batch.0 + 1 - file_next.0;
        io.file_next = Lsn(batch.0 + 1);
        io.active_bytes += buf.len() as u64;
        self.metrics.syncs.inc();
        self.metrics.batch_records.record(covered);
        if io.dir.is_some() && io.active_bytes >= io.seg_bytes {
            self.seal_active(io)?;
        }
        Ok(())
    }

    /// Seal the active segment: record it as immutable and open a fresh
    /// active file named after the next LSN to be written. Called with the
    /// `io` lock held, only after the crossing batch is fully fsynced — a
    /// sealed segment therefore always ends at a record boundary.
    fn seal_active(&self, io: &mut IoState) -> StorageResult<()> {
        let dir = io
            .dir
            .clone()
            .ok_or_else(|| StorageError::Corrupt("seal on non-segmented log".into()))?;
        let end_lsn = Lsn(io.file_next.0 - 1);
        if end_lsn < io.active_first {
            return Ok(()); // nothing written yet; nothing to seal
        }
        let new_path = dir.join(segment::segment_file_name(io.file_next));
        let new_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&new_path)?;
        new_file.sync_data()?;
        // Persist the directory entry so a crash right after the seal
        // still finds the (empty) new active segment. If the entry is
        // lost anyway, reopen simply treats the sealed file as active
        // again — it ends at a record boundary, so nothing is torn.
        segment::sync_dir(&dir);
        io.sealed.push(SealedSegment {
            first_lsn: io.active_first,
            end_lsn,
            path: dir.join(segment::segment_file_name(io.active_first)),
            bytes: io.active_bytes,
        });
        io.file = Some(new_file);
        io.active_first = io.file_next;
        io.active_bytes = 0;
        self.metrics.seals.inc();
        self.metrics.segments.set(io.sealed.len() as u64 + 1);
        Ok(())
    }

    /// The pre-group-commit durability path: the append mutex is held
    /// across the entire write+fsync, stalling every concurrent append and
    /// committer. Reachable only via [`Self::set_group_commit`]`(false)`;
    /// exists so the concurrency benchmark can measure what group commit
    /// buys against the original behaviour.
    fn legacy_flush(&self, target: Lsn) -> StorageResult<()> {
        let m = self.mem.lock();
        let target = target.min(Lsn(m.next_lsn.0 - 1));
        if self.durable.load(Ordering::Acquire) >= target.0 {
            return Ok(());
        }
        if self.poisoned.load(Ordering::Acquire) {
            return Err(Self::poisoned_err());
        }
        let mut io = self.io.lock();
        if io.file.is_some() && target >= io.file_next {
            let lo = (io.file_next.0 - m.first_lsn.0) as usize;
            let hi = (target.0 + 1 - m.first_lsn.0) as usize;
            let mut buf = Vec::new();
            for frame in &m.frames[lo..hi] {
                buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
                buf.extend_from_slice(frame);
            }
            self.write_to_active(&mut io, &buf, target)?;
        }
        self.metrics.batches.inc();
        self.durable.fetch_max(target.0, Ordering::AcqRel);
        Ok(())
    }

    /// Make the whole log durable.
    pub fn flush_all(&self) -> StorageResult<()> {
        let target = {
            let g = self.mem.lock();
            Lsn(g.next_lsn.0 - 1)
        };
        self.flush_to(target)
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.durable.load(Ordering::Acquire))
    }

    /// LSN that the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.mem.lock().next_lsn
    }

    /// Read the record at `lsn`, if it exists (and survives truncation).
    pub fn read(&self, lsn: Lsn) -> StorageResult<Option<LogRecord>> {
        let g = self.mem.lock();
        if lsn < g.first_lsn || lsn >= g.next_lsn || lsn == Lsn::ZERO {
            return Ok(None);
        }
        let idx = (lsn.0 - g.first_lsn.0) as usize;
        Ok(Some(LogRecord::decode(&g.frames[idx])?))
    }

    /// Decode all records with LSN in `[from, next_lsn)`, paired with their
    /// LSNs. Used by the recovery redo scan.
    pub fn records_from(&self, from: Lsn) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        let g = self.mem.lock();
        let start = from.max(g.first_lsn);
        let mut out = Vec::new();
        if start >= g.next_lsn {
            return Ok(out);
        }
        for (i, frame) in g.frames.iter().enumerate() {
            let lsn = Lsn(g.first_lsn.0 + i as u64);
            if lsn >= start {
                out.push((lsn, LogRecord::decode(frame)?));
            }
        }
        Ok(out)
    }

    /// A snapshot of the retained encoded frames: `(first_lsn, frames)`,
    /// where frame `i` has LSN `first_lsn + i`. This is the watermark-free
    /// raw material crash enumeration works from (serialize with
    /// [`crate::reader::LogReader::encode_frames`] to get the on-disk byte
    /// image).
    pub fn frames_snapshot(&self) -> (Lsn, Vec<Vec<u8>>) {
        let g = self.mem.lock();
        (g.first_lsn, g.frames.clone())
    }

    /// Build a fresh, memory-only log containing exactly the records with
    /// LSN in `[first_lsn, upto]`, all of them durable — the log a crash at
    /// watermark `upto` leaves behind. The source log is not modified, so an
    /// enumerator can carve every prefix out of one recorded run.
    pub fn clone_prefix(&self, upto: Lsn) -> LogManager {
        let g = self.mem.lock();
        let keep = (upto.0 + 1).saturating_sub(g.first_lsn.0) as usize;
        let frames: Vec<Vec<u8>> = g.frames.iter().take(keep).cloned().collect();
        let first_lsn = g.first_lsn;
        drop(g);
        let mut stats = LogStats::default();
        for frame in &frames {
            if let Ok(rec) = LogRecord::decode(frame) {
                stats.absorb(frame, &rec);
            }
        }
        let durable = Lsn(first_lsn.0 + frames.len() as u64 - 1);
        Self::assemble(
            LogMem {
                next_lsn: Lsn(durable.0 + 1),
                frames,
                first_lsn,
                stats,
            },
            None,
            durable,
            0,
        )
    }

    /// LSN of the most recent checkpoint record at or below the durable
    /// watermark, if any.
    pub fn last_checkpoint(&self) -> StorageResult<Option<(Lsn, LogRecord)>> {
        let durable = self.durable_lsn();
        let g = self.mem.lock();
        for (i, frame) in g.frames.iter().enumerate().rev() {
            let lsn = Lsn(g.first_lsn.0 + i as u64);
            if lsn > durable {
                continue;
            }
            // Cheap tag peek before full decode.
            if frame.first() == Some(&17u8) {
                return Ok(Some((lsn, LogRecord::decode(frame)?)));
            }
        }
        Ok(None)
    }

    /// Drop all records strictly below `lsn` (the low-water mark, §5).
    ///
    /// Memory-only and legacy single-file logs drop exactly `[first_lsn,
    /// lsn)` (for a file call [`Self::compact_file`] afterwards to rewrite
    /// the backing file). A segmented log rounds `lsn` *down* to the
    /// nearest segment boundary, so the retained frames always mirror the
    /// retained files; the boundary segments themselves are reclaimed by
    /// [`Self::recycle_segments`].
    ///
    /// Readers are safe across truncation: [`Self::records_from`] and
    /// [`Self::read`] take the same `mem` lock, so each call sees an
    /// atomic snapshot, and a tail-reader can detect a truncation that
    /// passed its cursor by re-checking [`Self::first_lsn`] (pinned by the
    /// `wal_truncate_vs_tail` obr-race scenario).
    pub fn truncate_before(&self, lsn: Lsn) {
        // Lock order mem -> io matches compact_file.
        let mut g = self.mem.lock();
        let lsn = {
            let io = self.io.lock();
            if io.dir.is_some() {
                // Round down to a segment boundary: the largest segment
                // first-LSN (sealed or active) at or below the mark.
                let mut bound = g.first_lsn;
                for s in &io.sealed {
                    if s.first_lsn <= lsn {
                        bound = bound.max(s.first_lsn);
                    }
                }
                if io.active_first <= lsn {
                    bound = bound.max(io.active_first);
                }
                bound
            } else {
                lsn
            }
        };
        if lsn <= g.first_lsn {
            return;
        }
        let keep_from = (lsn.0 - g.first_lsn.0) as usize;
        if keep_from >= g.frames.len() {
            g.frames.clear();
            g.first_lsn = g.next_lsn;
        } else {
            g.frames.drain(..keep_from);
            g.first_lsn = lsn;
        }
    }

    /// Delete — oldest first — every sealed segment whose records all lie
    /// below the current `first_lsn` (i.e. below the last
    /// [`Self::truncate_before`] mark, rounded to a boundary). Returns how
    /// many segment files were recycled. No-op for non-segmented logs.
    ///
    /// Oldest-first deletion means a crash part-way through leaves a
    /// contiguous suffix of segments, which reopens cleanly; a gap would
    /// be corruption.
    pub fn recycle_segments(&self) -> StorageResult<usize> {
        // Exclusive with any in-flight flush (which may be sealing).
        self.acquire_flusher();
        let result = (|| {
            let first = self.mem.lock().first_lsn;
            let mut io = self.io.lock();
            if io.dir.is_none() {
                return Ok(0);
            }
            let mut recycled = 0usize;
            while let Some(seg) = io.sealed.first() {
                if seg.end_lsn.0 >= first.0 {
                    break;
                }
                std::fs::remove_file(&seg.path)?;
                io.sealed.remove(0);
                recycled += 1;
            }
            if recycled > 0 {
                if let Some(dir) = io.dir.clone() {
                    segment::sync_dir(&dir);
                }
                self.metrics.recycled.add(recycled as u64);
                self.metrics.segments.set(io.sealed.len() as u64 + 1);
            }
            Ok(recycled)
        })();
        self.release_flusher();
        result
    }

    /// Wait for any in-flight group-commit batch to finish, then hold the
    /// flusher baton for an exclusive maintenance operation.
    fn acquire_flusher(&self) {
        let mut d = self.dur.lock();
        while d.flushing {
            self.dur_cv.wait(&mut d);
        }
        d.flushing = true;
    }

    fn release_flusher(&self) {
        let mut d = self.dur.lock();
        d.flushing = false;
        self.dur_cv.notify_all();
    }

    /// Reclaim the on-disk space of the truncated prefix. For a segmented
    /// log this is [`Self::recycle_segments`] — whole-file deletion, never
    /// a rewrite. For a legacy single-file log it rewrites the file to
    /// contain only the retained frames (everything from the current
    /// `first_lsn` up to the durable watermark). No-op for memory-only
    /// logs.
    ///
    /// NOTE: after compaction the file's first record is `first_lsn`, so it
    /// can only be re-opened alongside the metadata that records the
    /// truncation point; in this system the sharp checkpoint written by
    /// `Database::truncate_log` makes the dropped prefix unnecessary.
    pub fn compact_file(&self) -> StorageResult<()> {
        if self.is_segmented() {
            return self.recycle_segments().map(|_| ());
        }
        // Exclusive with any in-flight flush: take the baton, then the
        // locks in the fixed mem -> io order.
        self.acquire_flusher();
        let result = (|| {
            let g = self.mem.lock();
            let mut io = self.io.lock();
            if io.file.is_none() {
                return Ok(());
            }
            let durable = self.durable_lsn();
            let durable_count = (durable.0 + 1).saturating_sub(g.first_lsn.0) as usize;
            let mut out = Vec::new();
            for frame in g.frames.iter().take(durable_count) {
                out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
                out.extend_from_slice(frame);
            }
            let file = io.file.as_mut().expect("checked above");
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&out)?;
            file.sync_data()?;
            io.file_next = Lsn(durable.0 + 1);
            io.active_bytes = out.len() as u64;
            Ok(())
        })();
        if result.is_err() {
            // The rewrite can stop anywhere between the truncation and the
            // final fsync; nothing about the file's content is known, so no
            // later flush may append to it.
            self.poison();
        }
        self.release_flusher();
        result
    }

    /// Simulate a crash: the volatile tail past the durability watermark is
    /// lost. Returns how many records were discarded.
    pub fn simulate_crash(&self) -> usize {
        // Exclusive with any in-flight flush so the batch/requested state
        // cannot straddle the truncation.
        self.acquire_flusher();
        let dropped = {
            let mut g = self.mem.lock();
            let durable = self.durable_lsn().max(Lsn(g.first_lsn.0 - 1));
            let keep = (durable.0 + 1 - g.first_lsn.0) as usize;
            let dropped = g.frames.len().saturating_sub(keep);
            g.frames.truncate(keep);
            g.next_lsn = Lsn(durable.0 + 1);
            dropped
        };
        {
            let mut d = self.dur.lock();
            d.requested = self.durable_lsn();
        }
        self.release_flusher();
        dropped
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> LogStats {
        self.mem.lock().stats.clone()
    }

    /// Durability-path counters (fsync batching).
    pub fn sync_stats(&self) -> SyncStats {
        SyncStats {
            flush_calls: self.metrics.flush_calls.get(),
            syncs: self.metrics.syncs.get(),
            batches: self.metrics.batches.get(),
            group_waits: self.metrics.group_waits.get(),
        }
    }

    /// Number of records currently retained (post-truncation).
    pub fn len(&self) -> usize {
        self.mem.lock().frames.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// LSN of the oldest retained record (`next_lsn` when none are). A
    /// tail-reader compares this against its cursor to detect a truncation
    /// that raced past it.
    pub fn first_lsn(&self) -> Lsn {
        self.mem.lock().first_lsn
    }

    /// True when this log is a segment directory (opened via
    /// [`Self::open_dir`]).
    pub fn is_segmented(&self) -> bool {
        self.io.lock().dir.is_some()
    }

    /// The current segment files, ascending by first LSN: every sealed
    /// (immutable, shippable) segment followed by the active one. Empty
    /// for non-segmented logs. The active entry's `end_lsn` reflects only
    /// what has been *written to the file*, i.e. the durable tail a
    /// shipping reader may rely on.
    pub fn segment_catalog(&self) -> Vec<SegmentMeta> {
        let io = self.io.lock();
        let Some(dir) = io.dir.as_ref() else {
            return Vec::new();
        };
        let mut out: Vec<SegmentMeta> = io
            .sealed
            .iter()
            .map(|s| SegmentMeta {
                first_lsn: s.first_lsn,
                end_lsn: s.end_lsn,
                path: s.path.clone(),
                sealed: true,
            })
            .collect();
        out.push(SegmentMeta {
            first_lsn: io.active_first,
            end_lsn: Lsn(io.file_next.0 - 1),
            path: dir.join(segment::segment_file_name(io.active_first)),
            sealed: false,
        });
        out
    }

    /// Total bytes the log currently occupies on disk (sealed segments
    /// plus the active one). Zero for memory-only logs; for legacy
    /// single-file logs this is the written byte count since open.
    pub fn on_disk_bytes(&self) -> u64 {
        let io = self.io.lock();
        io.sealed.iter().map(|s| s.bytes).sum::<u64>() + io.active_bytes
    }
}

impl WalFlush for LogManager {
    fn flush_to(&self, lsn: Lsn) -> StorageResult<()> {
        LogManager::flush_to(self, lsn)
    }
}

impl obr_storage::DurabilityWitness for LogManager {
    fn durability_mark(&self) -> Lsn {
        self.durable_lsn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CheckpointData, TxnId};

    fn begin(n: u64) -> LogRecord {
        LogRecord::TxnBegin { txn: TxnId(n) }
    }

    #[test]
    fn append_assigns_sequential_lsns_from_one() {
        let log = LogManager::new();
        assert_eq!(log.append(&begin(1)), Lsn(1));
        assert_eq!(log.append(&begin(2)), Lsn(2));
        assert_eq!(log.next_lsn(), Lsn(3));
    }

    #[test]
    fn read_round_trips() {
        let log = LogManager::new();
        let lsn = log.append(&begin(9));
        assert_eq!(log.read(lsn).unwrap(), Some(begin(9)));
        assert_eq!(log.read(Lsn(99)).unwrap(), None);
        assert_eq!(log.read(Lsn::ZERO).unwrap(), None);
    }

    #[test]
    fn crash_loses_unflushed_tail() {
        let log = LogManager::new();
        log.append(&begin(1));
        let l2 = log.append(&begin(2));
        log.append(&begin(3));
        log.flush_to(l2).unwrap();
        let dropped = log.simulate_crash();
        assert_eq!(dropped, 1);
        assert_eq!(log.read(Lsn(3)).unwrap(), None);
        assert_eq!(log.read(l2).unwrap(), Some(begin(2)));
        // New appends reuse the freed LSN space.
        assert_eq!(log.append(&begin(4)), Lsn(3));
    }

    #[test]
    fn append_force_is_durable() {
        let log = LogManager::new();
        let lsn = log.append_force(&begin(1)).unwrap();
        assert_eq!(log.durable_lsn(), lsn);
        assert_eq!(log.simulate_crash(), 0);
    }

    #[test]
    fn flush_to_never_goes_backwards_or_past_end() {
        let log = LogManager::new();
        let l1 = log.append(&begin(1));
        log.flush_to(Lsn(50)).unwrap(); // clamped to the last real record
        assert_eq!(log.durable_lsn(), l1);
        log.flush_to(Lsn::ZERO).unwrap();
        assert_eq!(log.durable_lsn(), l1);
    }

    #[test]
    fn flush_to_does_not_overshoot_its_target() {
        // Group commit batches *requested* targets — it must not silently
        // drag unrequested tail records across the durability line.
        let log = LogManager::new();
        log.append(&begin(1));
        let l2 = log.append(&begin(2));
        log.append(&begin(3)); // appended, never requested durable
        log.flush_to(l2).unwrap();
        assert_eq!(log.durable_lsn(), l2);
        assert_eq!(log.simulate_crash(), 1);
    }

    #[test]
    fn poisoned_log_fails_new_flushes_but_keeps_durable_prefix() {
        let log = LogManager::new();
        let l1 = log.append(&begin(1));
        log.flush_to(l1).unwrap();
        log.poison();
        assert!(log.is_poisoned());
        let l2 = log.append(&begin(2));
        let err = log.flush_to(l2).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "unexpected: {err}");
        assert_eq!(log.durable_lsn(), l1, "watermark must not move");
        // Already-durable targets still answer Ok; appends stay available.
        log.flush_to(l1).unwrap();
        assert!(log.append_force(&begin(3)).is_err());
        // The legacy single-lock path refuses too.
        log.set_group_commit(false);
        assert!(log.flush_to(l2).is_err());
    }

    #[test]
    fn records_from_returns_suffix() {
        let log = LogManager::new();
        for i in 1..=5 {
            log.append(&begin(i));
        }
        let recs = log.records_from(Lsn(3)).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].0, Lsn(3));
        assert_eq!(recs[0].1, begin(3));
    }

    #[test]
    fn last_checkpoint_found_below_durable_watermark() {
        let log = LogManager::new();
        log.append(&begin(1));
        let ckpt = LogRecord::Checkpoint {
            data: CheckpointData::default(),
        };
        let cl = log.append(&ckpt);
        log.append(&begin(2));
        // Not durable yet: invisible.
        log.flush_to(Lsn(1)).unwrap();
        assert!(log.last_checkpoint().unwrap().is_none());
        log.flush_to(cl).unwrap();
        let (lsn, rec) = log.last_checkpoint().unwrap().unwrap();
        assert_eq!(lsn, cl);
        assert_eq!(rec, ckpt);
    }

    #[test]
    fn truncation_honours_low_water_mark() {
        let log = LogManager::new();
        for i in 1..=5 {
            log.append(&begin(i));
        }
        log.flush_all().unwrap();
        log.truncate_before(Lsn(4));
        assert_eq!(log.len(), 2);
        assert_eq!(log.read(Lsn(3)).unwrap(), None);
        assert_eq!(log.read(Lsn(4)).unwrap(), Some(begin(4)));
        // records_from still works over the truncated log.
        let recs = log.records_from(Lsn(1)).unwrap();
        assert_eq!(recs.first().unwrap().0, Lsn(4));
    }

    #[test]
    fn stats_track_reorg_bytes_separately() {
        use crate::record::{MovePayload, UnitId};
        use obr_storage::PageId;
        let log = LogManager::new();
        log.append(&begin(1));
        log.append(&LogRecord::ReorgMove {
            unit: UnitId(1),
            org: PageId(1),
            dest: PageId(2),
            payload: MovePayload::Keys(vec![1, 2, 3]),
            prev_lsn: Lsn::ZERO,
        });
        let s = log.stats();
        assert_eq!(s.records, 2);
        assert_eq!(s.reorg_records, 1);
        assert!(s.reorg_bytes > 0 && s.reorg_bytes < s.bytes);
        assert_eq!(s.by_kind.get("reorg_move").unwrap().0, 1);
    }

    #[test]
    fn stats_since_subtracts_per_kind() {
        let log = LogManager::new();
        log.append(&begin(1));
        let before = log.stats();
        log.append(&begin(2));
        let d = log.stats().since(&before);
        assert_eq!(d.records, 1);
        assert_eq!(d.by_kind.get("txn_begin").unwrap().0, 1);
    }

    #[test]
    fn sync_stats_count_batches_and_elided_flushes() {
        let log = LogManager::new();
        let l1 = log.append(&begin(1));
        log.flush_to(l1).unwrap();
        log.flush_to(l1).unwrap(); // already durable: no new batch
        let s = log.sync_stats();
        assert_eq!(s.flush_calls, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.syncs, 0, "memory-only log never fsyncs");
    }

    #[test]
    fn file_backed_log_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("obr-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let log = LogManager::open_file(&path).unwrap();
            log.append(&begin(1));
            let l2 = log.append(&begin(2));
            log.append(&begin(3)); // never flushed: lost
            log.flush_to(l2).unwrap();
        }
        {
            let log = LogManager::open_file(&path).unwrap();
            assert_eq!(log.len(), 2, "only the flushed prefix survives");
            assert_eq!(log.read(Lsn(1)).unwrap(), Some(begin(1)));
            assert_eq!(log.read(Lsn(2)).unwrap(), Some(begin(2)));
            assert_eq!(log.durable_lsn(), Lsn(2));
            // Appends continue from the recovered position.
            assert_eq!(log.append(&begin(4)), Lsn(3));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backed_log_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("obr-wal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let log = LogManager::open_file(&path).unwrap();
            log.append_force(&begin(1)).unwrap();
            log.append_force(&begin(2)).unwrap();
        }
        // Tear the last record: chop bytes off the file end.
        {
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            let len = f.metadata().unwrap().len();
            f.set_len(len - 3).unwrap();
        }
        let log = LogManager::open_file(&path).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.read(Lsn(1)).unwrap(), Some(begin(1)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_file_drops_truncated_prefix() {
        let dir = std::env::temp_dir().join(format!("obr-wal-cmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let log = LogManager::open_file(&path).unwrap();
        for i in 1..=10 {
            log.append(&begin(i));
        }
        log.flush_all().unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        log.truncate_before(Lsn(8));
        log.compact_file().unwrap();
        let compacted = std::fs::metadata(&path).unwrap().len();
        assert!(compacted < full);
        assert_eq!(log.read(Lsn(8)).unwrap(), Some(begin(8)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_mode_still_reaches_durability() {
        let dir = std::env::temp_dir().join(format!("obr-wal-legacy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let log = LogManager::open_file(&path).unwrap();
            log.set_group_commit(false);
            assert!(!log.group_commit_enabled());
            let l1 = log.append(&begin(1));
            let l2 = log.append(&begin(2));
            log.flush_to(l1).unwrap();
            assert_eq!(log.durable_lsn(), l1);
            log.flush_to(l2).unwrap();
            assert_eq!(log.durable_lsn(), l2);
            assert_eq!(log.sync_stats().syncs, 2, "legacy mode never batches");
        }
        let log = LogManager::open_file(&path).unwrap();
        assert_eq!(log.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    static SEG_TEST_DIRS: obr_sync::atomic::AtomicU64 = obr_sync::atomic::AtomicU64::new(0);

    fn seg_dir(tag: &str) -> std::path::PathBuf {
        // relaxed: test-directory name uniqueness counter only.
        let n = SEG_TEST_DIRS.fetch_add(1, obr_sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("obr-seg-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn segmented_log_seals_at_threshold_and_survives_reopen() {
        let dir = seg_dir("seal");
        {
            let log = LogManager::open_dir(&dir, 64).unwrap();
            for i in 1..=20 {
                log.append_force(&begin(i)).unwrap();
            }
            let cat = log.segment_catalog();
            assert!(cat.len() >= 2, "20 forced records must cross one seal");
            assert!(cat[..cat.len() - 1].iter().all(|s| s.sealed));
            assert!(!cat.last().unwrap().sealed);
            // Catalog is contiguous.
            for w in cat.windows(2) {
                assert_eq!(w[1].first_lsn, Lsn(w[0].end_lsn.0 + 1));
            }
            assert_eq!(log.sync_stats().syncs, 20);
        }
        let log = LogManager::open_dir(&dir, 64).unwrap();
        assert_eq!(log.len(), 20);
        assert_eq!(log.durable_lsn(), Lsn(20));
        for i in 1..=20u64 {
            assert_eq!(log.read(Lsn(i)).unwrap(), Some(begin(i)));
        }
        // Appends continue from the recovered position.
        assert_eq!(log.append(&begin(21)), Lsn(21));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segmented_truncate_rounds_down_and_recycle_deletes_files() {
        let dir = seg_dir("recycle");
        let log = LogManager::open_dir(&dir, 48).unwrap();
        for i in 1..=24 {
            log.append_force(&begin(i)).unwrap();
        }
        let cat = log.segment_catalog();
        assert!(cat.len() >= 3, "need several segments to recycle");
        // Ask to truncate in the middle of some segment: the drop must
        // round DOWN to that segment's first LSN, never past the mark.
        let mid_seg = &cat[cat.len() / 2];
        let mark = Lsn(mid_seg.first_lsn.0 + 1);
        log.truncate_before(mark);
        assert_eq!(log.first_lsn(), mid_seg.first_lsn, "rounded to boundary");
        assert!(log.read(mid_seg.first_lsn).unwrap().is_some());
        let files_before = crate::segment::list_segments(&dir).unwrap().len();
        let recycled = log.recycle_segments().unwrap();
        assert!(recycled > 0, "sealed prefix below the mark must be deleted");
        let files_after = crate::segment::list_segments(&dir).unwrap().len();
        assert_eq!(files_before - files_after, recycled);
        drop(log);
        // Reopen: the surviving suffix is contiguous and complete.
        let log = LogManager::open_dir(&dir, 48).unwrap();
        assert_eq!(log.first_lsn(), mid_seg.first_lsn);
        assert_eq!(log.durable_lsn(), Lsn(24));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segmented_open_rejects_gap() {
        let dir = seg_dir("gap");
        {
            let log = LogManager::open_dir(&dir, 48).unwrap();
            for i in 1..=24 {
                log.append_force(&begin(i)).unwrap();
            }
            assert!(log.segment_catalog().len() >= 3);
        }
        // Delete a middle segment: survivors are no longer contiguous.
        let segs = crate::segment::list_segments(&dir).unwrap();
        std::fs::remove_file(&segs[1].1).unwrap();
        let Err(err) = LogManager::open_dir(&dir, 48) else {
            panic!("a segment gap must be rejected");
        };
        assert!(
            err.to_string().contains("gap"),
            "want a segment-gap corruption error, got: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_sealed_segment_is_corruption_torn_active_is_truncated() {
        let dir = seg_dir("torn");
        let mut total = 24u64;
        {
            let log = LogManager::open_dir(&dir, 48).unwrap();
            for i in 1..=total {
                log.append_force(&begin(i)).unwrap();
            }
            // Make sure the active segment holds at least one record (the
            // last append may itself have sealed, leaving it empty).
            while log.segment_catalog().last().unwrap().end_lsn
                < log.segment_catalog().last().unwrap().first_lsn
            {
                total += 1;
                log.append_force(&begin(total)).unwrap();
            }
        }
        let segs = crate::segment::list_segments(&dir).unwrap();
        assert!(segs.len() >= 3);
        // Chop the ACTIVE (last) segment: an expected crash artifact —
        // reopen truncates the torn tail and loses only the last record.
        let (active_first, active_path) = segs.last().unwrap();
        let pre = std::fs::metadata(active_path).unwrap().len();
        assert!(pre > 3, "active segment must hold at least one record");
        std::fs::OpenOptions::new()
            .write(true)
            .open(active_path)
            .unwrap()
            .set_len(pre - 3)
            .unwrap();
        {
            let log = LogManager::open_dir(&dir, 48).unwrap();
            assert!(log.durable_lsn() < Lsn(total));
            assert!(log.durable_lsn() >= Lsn(active_first.0 - 1));
        }
        // Chop a SEALED segment: corruption, not a crash artifact.
        let segs = crate::segment::list_segments(&dir).unwrap();
        let sealed_path = &segs[0].1;
        let pre = std::fs::metadata(sealed_path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(sealed_path)
            .unwrap()
            .set_len(pre - 3)
            .unwrap();
        let Err(err) = LogManager::open_dir(&dir, 48) else {
            panic!("a torn sealed segment must be rejected");
        };
        assert!(
            err.to_string().contains("sealed"),
            "want a sealed-torn corruption error, got: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_during_seal_reopens_either_way() {
        let dir = seg_dir("midseal");
        {
            let log = LogManager::open_dir(&dir, 48).unwrap();
            for i in 1..=12 {
                log.append_force(&begin(i)).unwrap();
            }
            assert!(log.segment_catalog().len() >= 2);
        }
        // Case A: the crash happened after the seal created the new empty
        // active file — reopen adopts it (empty active is fine).
        {
            let log = LogManager::open_dir(&dir, 48).unwrap();
            assert_eq!(log.durable_lsn(), Lsn(12));
        }
        // Case B: the directory entry for the new active file was lost in
        // the crash — the previously sealed file becomes active again. It
        // ends at a record boundary, so nothing is torn.
        let segs = crate::segment::list_segments(&dir).unwrap();
        if std::fs::metadata(&segs.last().unwrap().1).unwrap().len() == 0 {
            std::fs::remove_file(&segs.last().unwrap().1).unwrap();
        }
        let log = LogManager::open_dir(&dir, 48).unwrap();
        assert_eq!(log.durable_lsn(), Lsn(12));
        assert_eq!(log.append(&begin(13)), Lsn(13));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_error_releases_baton_and_surfaces() {
        let dir = seg_dir("ioerr");
        let log = LogManager::open_dir(&dir, 1 << 20).unwrap();
        log.append_force(&begin(1)).unwrap();
        // Destroy the backing directory out from under the log: the next
        // seal-free append flush still writes into the (unlinked) active
        // file handle, so force an error by sealing into a missing dir.
        std::fs::remove_dir_all(&dir).unwrap();
        let l2 = log.append(&begin(2));
        // Writing to an unlinked file succeeds on POSIX; the point of this
        // test is the *protocol*: an error (if any) must not wedge the
        // flusher baton. Simulate the worst case by a recycle on a missing
        // dir after truncation, then prove flush_to still works.
        log.truncate_before(Lsn(2));
        let _ = log.recycle_segments();
        log.flush_to(l2).unwrap();
        assert_eq!(log.durable_lsn(), l2);
    }

    #[test]
    fn concurrent_appends_get_unique_lsns() {
        let log = std::sync::Arc::new(LogManager::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|i| log.append(&begin(i)).0)
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800);
    }
}
