//! The log manager: an append-only sequence of encoded records with a
//! durability watermark.
//!
//! Records live in memory as encoded frames; [`LogManager::flush_to`] moves
//! the durability watermark forward (the buffer pool calls it through the
//! [`obr_storage::WalFlush`] hook before writing any dirty page), and
//! [`LogManager::simulate_crash`] discards every record past the watermark —
//! the volatile tail a power failure would lose.
//!
//! Per-kind byte accounting feeds experiment E6 (reorganization log volume
//! under the three logging strategies).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use obr_storage::{Lsn, StorageResult, WalFlush};

use crate::record::LogRecord;

/// Byte/record accounting, split by record kind.
#[derive(Debug, Clone, Default)]
pub struct LogStats {
    /// Total records appended.
    pub records: u64,
    /// Total encoded bytes appended.
    pub bytes: u64,
    /// Records appended by the reorganizer.
    pub reorg_records: u64,
    /// Bytes appended by the reorganizer.
    pub reorg_bytes: u64,
    /// Per-kind (records, bytes).
    pub by_kind: HashMap<&'static str, (u64, u64)>,
}

impl LogStats {
    /// Difference against an earlier snapshot (kinds present in `self`).
    pub fn since(&self, earlier: &LogStats) -> LogStats {
        let mut by_kind = HashMap::new();
        for (k, &(r, b)) in &self.by_kind {
            let (er, eb) = earlier.by_kind.get(k).copied().unwrap_or((0, 0));
            by_kind.insert(*k, (r - er, b - eb));
        }
        LogStats {
            records: self.records - earlier.records,
            bytes: self.bytes - earlier.bytes,
            reorg_records: self.reorg_records - earlier.reorg_records,
            reorg_bytes: self.reorg_bytes - earlier.reorg_bytes,
            by_kind,
        }
    }
}

struct LogInner {
    /// Encoded frames; frame `i` has LSN `first_lsn + i`.
    frames: Vec<Vec<u8>>,
    /// LSN of `frames[0]` (moves up when the log is truncated).
    first_lsn: Lsn,
    /// Next LSN to assign.
    next_lsn: Lsn,
    /// Highest durable LSN.
    durable_lsn: Lsn,
    stats: LogStats,
    /// Backing file, when the log is durable. Frames up to `durable_lsn`
    /// have been appended and fsynced; `file_next` is the next LSN whose
    /// frame still needs writing.
    file: Option<File>,
    file_next: Lsn,
}

/// The write-ahead log.
///
/// ```
/// use obr_wal::{LogManager, LogRecord, TxnId};
///
/// let log = LogManager::new();
/// let l1 = log.append(&LogRecord::TxnBegin { txn: TxnId(1) });
/// log.append(&LogRecord::TxnCommit { txn: TxnId(1) }); // volatile tail
/// log.flush_to(l1);
/// // A crash loses everything past the durability watermark.
/// assert_eq!(log.simulate_crash(), 1);
/// assert_eq!(log.read(l1).unwrap(), Some(LogRecord::TxnBegin { txn: TxnId(1) }));
/// ```
pub struct LogManager {
    inner: Mutex<LogInner>,
}

impl Default for LogManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LogManager {
    /// Create an empty log. LSNs start at 1; [`Lsn::ZERO`] means "none".
    pub fn new() -> LogManager {
        LogManager {
            inner: Mutex::new(LogInner {
                frames: Vec::new(),
                first_lsn: Lsn(1),
                next_lsn: Lsn(1),
                durable_lsn: Lsn::ZERO,
                stats: LogStats::default(),
                file: None,
                file_next: Lsn(1),
            }),
        }
    }

    /// Open a durable log backed by `path`. Existing frames are read back
    /// (they are all durable); appends reach the file on [`Self::flush_to`].
    ///
    /// On-disk format: a sequence of `[len: u32 LE][frame bytes]` records; a
    /// torn tail (incomplete final record after a crash) is truncated away.
    pub fn open_file(path: &Path) -> StorageResult<LogManager> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut stats = LogStats::default();
        let mut good_end = 0u64;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut pos = 0usize;
        while pos + 4 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            if pos + 4 + len > buf.len() {
                break; // torn tail
            }
            let frame = buf[pos + 4..pos + 4 + len].to_vec();
            // Validate before accepting (a corrupt frame ends the log).
            let Ok(rec) = LogRecord::decode(&frame) else {
                break;
            };
            stats.records += 1;
            stats.bytes += frame.len() as u64;
            if rec.is_reorg() {
                stats.reorg_records += 1;
                stats.reorg_bytes += frame.len() as u64;
            }
            let e = stats.by_kind.entry(rec.kind_name()).or_insert((0, 0));
            e.0 += 1;
            e.1 += frame.len() as u64;
            frames.push(frame);
            pos += 4 + len;
            good_end = pos as u64;
        }
        file.set_len(good_end)?;
        file.seek(SeekFrom::End(0))?;
        let n = frames.len() as u64;
        Ok(LogManager {
            inner: Mutex::new(LogInner {
                frames,
                first_lsn: Lsn(1),
                next_lsn: Lsn(n + 1),
                durable_lsn: Lsn(n),
                stats,
                file: Some(file),
                file_next: Lsn(n + 1),
            }),
        })
    }

    /// Append a record; returns its LSN. Not yet durable.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let bytes = rec.encode();
        let mut g = self.inner.lock();
        let lsn = g.next_lsn;
        g.next_lsn = lsn.next();
        g.stats.records += 1;
        g.stats.bytes += bytes.len() as u64;
        if rec.is_reorg() {
            g.stats.reorg_records += 1;
            g.stats.reorg_bytes += bytes.len() as u64;
        }
        let e = g.stats.by_kind.entry(rec.kind_name()).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes.len() as u64;
        g.frames.push(bytes);
        lsn
    }

    /// Append and immediately force to the durability watermark.
    pub fn append_force(&self, rec: &LogRecord) -> Lsn {
        let lsn = self.append(rec);
        self.flush_to(lsn);
        lsn
    }

    /// Make the log durable through `lsn`.
    pub fn flush_to(&self, lsn: Lsn) {
        let mut g = self.inner.lock();
        let cap = Lsn(g.next_lsn.0 - 1);
        let target = lsn.min(cap);
        if target > g.durable_lsn {
            Self::write_file_frames(&mut g, target);
            g.durable_lsn = target;
        }
    }

    /// Make the whole log durable.
    pub fn flush_all(&self) {
        let mut g = self.inner.lock();
        let target = Lsn(g.next_lsn.0 - 1);
        Self::write_file_frames(&mut g, target);
        g.durable_lsn = target;
    }

    /// Append frames `(file_next..=target]` to the backing file and fsync.
    /// A write failure panics: continuing without a durable log would break
    /// the WAL contract silently.
    fn write_file_frames(g: &mut LogInner, target: Lsn) {
        if g.file.is_none() || target < g.file_next {
            return;
        }
        let first = g.first_lsn;
        let lo = (g.file_next.0 - first.0) as usize;
        let hi = (target.0 + 1 - first.0) as usize;
        let mut out = Vec::new();
        for frame in &g.frames[lo..hi] {
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(frame);
        }
        let file = g.file.as_mut().expect("checked above");
        file.write_all(&out).expect("WAL append failed");
        file.sync_data().expect("WAL fsync failed");
        g.file_next = Lsn(target.0 + 1);
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        self.inner.lock().durable_lsn
    }

    /// LSN that the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn
    }

    /// Read the record at `lsn`, if it exists (and survives truncation).
    pub fn read(&self, lsn: Lsn) -> StorageResult<Option<LogRecord>> {
        let g = self.inner.lock();
        if lsn < g.first_lsn || lsn >= g.next_lsn || lsn == Lsn::ZERO {
            return Ok(None);
        }
        let idx = (lsn.0 - g.first_lsn.0) as usize;
        Ok(Some(LogRecord::decode(&g.frames[idx])?))
    }

    /// Decode all records with LSN in `[from, next_lsn)`, paired with their
    /// LSNs. Used by the recovery redo scan.
    pub fn records_from(&self, from: Lsn) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        let g = self.inner.lock();
        let start = from.max(g.first_lsn);
        let mut out = Vec::new();
        if start >= g.next_lsn {
            return Ok(out);
        }
        for (i, frame) in g.frames.iter().enumerate() {
            let lsn = Lsn(g.first_lsn.0 + i as u64);
            if lsn >= start {
                out.push((lsn, LogRecord::decode(frame)?));
            }
        }
        Ok(out)
    }

    /// LSN of the most recent checkpoint record at or below the durable
    /// watermark, if any.
    pub fn last_checkpoint(&self) -> StorageResult<Option<(Lsn, LogRecord)>> {
        let g = self.inner.lock();
        for (i, frame) in g.frames.iter().enumerate().rev() {
            let lsn = Lsn(g.first_lsn.0 + i as u64);
            if lsn > g.durable_lsn {
                continue;
            }
            // Cheap tag peek before full decode.
            if frame.first() == Some(&17u8) {
                return Ok(Some((lsn, LogRecord::decode(frame)?)));
            }
        }
        Ok(None)
    }

    /// Drop all records strictly below `lsn` (the low-water mark, §5).
    ///
    /// For file-backed logs only the in-memory frames are dropped; call
    /// [`Self::compact_file`] to rewrite the backing file without the
    /// discarded prefix.
    pub fn truncate_before(&self, lsn: Lsn) {
        let mut g = self.inner.lock();
        if lsn <= g.first_lsn {
            return;
        }
        let keep_from = (lsn.0 - g.first_lsn.0) as usize;
        if keep_from >= g.frames.len() {
            g.frames.clear();
            g.first_lsn = g.next_lsn;
        } else {
            g.frames.drain(..keep_from);
            g.first_lsn = lsn;
        }
    }

    /// Rewrite the backing file to contain only the retained frames
    /// (everything from the current `first_lsn` up to the durable
    /// watermark). No-op for memory-only logs.
    ///
    /// NOTE: after compaction the file's first record is `first_lsn`, so it
    /// can only be re-opened alongside the metadata that records the
    /// truncation point; in this system the sharp checkpoint written by
    /// `Database::truncate_log` makes the dropped prefix unnecessary.
    pub fn compact_file(&self) -> StorageResult<()> {
        let mut g = self.inner.lock();
        if g.file.is_none() {
            return Ok(());
        }
        let durable_count = (g.durable_lsn.0 + 1).saturating_sub(g.first_lsn.0) as usize;
        let mut out = Vec::new();
        for frame in g.frames.iter().take(durable_count) {
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(frame);
        }
        let file = g.file.as_mut().expect("checked above");
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&out)?;
        file.sync_data()?;
        g.file_next = Lsn(g.durable_lsn.0 + 1);
        Ok(())
    }

    /// Simulate a crash: the volatile tail past the durability watermark is
    /// lost. Returns how many records were discarded.
    pub fn simulate_crash(&self) -> usize {
        let mut g = self.inner.lock();
        let durable = g.durable_lsn.max(Lsn(g.first_lsn.0 - 1));
        let keep = (durable.0 + 1 - g.first_lsn.0) as usize;
        let dropped = g.frames.len().saturating_sub(keep);
        g.frames.truncate(keep);
        g.next_lsn = Lsn(durable.0 + 1);
        dropped
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> LogStats {
        self.inner.lock().stats.clone()
    }

    /// Number of records currently retained (post-truncation).
    pub fn len(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl WalFlush for LogManager {
    fn flush_to(&self, lsn: Lsn) {
        LogManager::flush_to(self, lsn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CheckpointData, TxnId};

    fn begin(n: u64) -> LogRecord {
        LogRecord::TxnBegin { txn: TxnId(n) }
    }

    #[test]
    fn append_assigns_sequential_lsns_from_one() {
        let log = LogManager::new();
        assert_eq!(log.append(&begin(1)), Lsn(1));
        assert_eq!(log.append(&begin(2)), Lsn(2));
        assert_eq!(log.next_lsn(), Lsn(3));
    }

    #[test]
    fn read_round_trips() {
        let log = LogManager::new();
        let lsn = log.append(&begin(9));
        assert_eq!(log.read(lsn).unwrap(), Some(begin(9)));
        assert_eq!(log.read(Lsn(99)).unwrap(), None);
        assert_eq!(log.read(Lsn::ZERO).unwrap(), None);
    }

    #[test]
    fn crash_loses_unflushed_tail() {
        let log = LogManager::new();
        log.append(&begin(1));
        let l2 = log.append(&begin(2));
        log.append(&begin(3));
        log.flush_to(l2);
        let dropped = log.simulate_crash();
        assert_eq!(dropped, 1);
        assert_eq!(log.read(Lsn(3)).unwrap(), None);
        assert_eq!(log.read(l2).unwrap(), Some(begin(2)));
        // New appends reuse the freed LSN space.
        assert_eq!(log.append(&begin(4)), Lsn(3));
    }

    #[test]
    fn append_force_is_durable() {
        let log = LogManager::new();
        let lsn = log.append_force(&begin(1));
        assert_eq!(log.durable_lsn(), lsn);
        assert_eq!(log.simulate_crash(), 0);
    }

    #[test]
    fn flush_to_never_goes_backwards_or_past_end() {
        let log = LogManager::new();
        let l1 = log.append(&begin(1));
        log.flush_to(Lsn(50)); // clamped to the last real record
        assert_eq!(log.durable_lsn(), l1);
        log.flush_to(Lsn::ZERO);
        assert_eq!(log.durable_lsn(), l1);
    }

    #[test]
    fn records_from_returns_suffix() {
        let log = LogManager::new();
        for i in 1..=5 {
            log.append(&begin(i));
        }
        let recs = log.records_from(Lsn(3)).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].0, Lsn(3));
        assert_eq!(recs[0].1, begin(3));
    }

    #[test]
    fn last_checkpoint_found_below_durable_watermark() {
        let log = LogManager::new();
        log.append(&begin(1));
        let ckpt = LogRecord::Checkpoint {
            data: CheckpointData::default(),
        };
        let cl = log.append(&ckpt);
        log.append(&begin(2));
        // Not durable yet: invisible.
        log.flush_to(Lsn(1));
        assert!(log.last_checkpoint().unwrap().is_none());
        log.flush_to(cl);
        let (lsn, rec) = log.last_checkpoint().unwrap().unwrap();
        assert_eq!(lsn, cl);
        assert_eq!(rec, ckpt);
    }

    #[test]
    fn truncation_honours_low_water_mark() {
        let log = LogManager::new();
        for i in 1..=5 {
            log.append(&begin(i));
        }
        log.flush_all();
        log.truncate_before(Lsn(4));
        assert_eq!(log.len(), 2);
        assert_eq!(log.read(Lsn(3)).unwrap(), None);
        assert_eq!(log.read(Lsn(4)).unwrap(), Some(begin(4)));
        // records_from still works over the truncated log.
        let recs = log.records_from(Lsn(1)).unwrap();
        assert_eq!(recs.first().unwrap().0, Lsn(4));
    }

    #[test]
    fn stats_track_reorg_bytes_separately() {
        use crate::record::{MovePayload, UnitId};
        use obr_storage::PageId;
        let log = LogManager::new();
        log.append(&begin(1));
        log.append(&LogRecord::ReorgMove {
            unit: UnitId(1),
            org: PageId(1),
            dest: PageId(2),
            payload: MovePayload::Keys(vec![1, 2, 3]),
            prev_lsn: Lsn::ZERO,
        });
        let s = log.stats();
        assert_eq!(s.records, 2);
        assert_eq!(s.reorg_records, 1);
        assert!(s.reorg_bytes > 0 && s.reorg_bytes < s.bytes);
        assert_eq!(s.by_kind.get("reorg_move").unwrap().0, 1);
    }

    #[test]
    fn stats_since_subtracts_per_kind() {
        let log = LogManager::new();
        log.append(&begin(1));
        let before = log.stats();
        log.append(&begin(2));
        let d = log.stats().since(&before);
        assert_eq!(d.records, 1);
        assert_eq!(d.by_kind.get("txn_begin").unwrap().0, 1);
    }

    #[test]
    fn file_backed_log_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("obr-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let log = LogManager::open_file(&path).unwrap();
            log.append(&begin(1));
            let l2 = log.append(&begin(2));
            log.append(&begin(3)); // never flushed: lost
            log.flush_to(l2);
        }
        {
            let log = LogManager::open_file(&path).unwrap();
            assert_eq!(log.len(), 2, "only the flushed prefix survives");
            assert_eq!(log.read(Lsn(1)).unwrap(), Some(begin(1)));
            assert_eq!(log.read(Lsn(2)).unwrap(), Some(begin(2)));
            assert_eq!(log.durable_lsn(), Lsn(2));
            // Appends continue from the recovered position.
            assert_eq!(log.append(&begin(4)), Lsn(3));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backed_log_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("obr-wal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let log = LogManager::open_file(&path).unwrap();
            log.append_force(&begin(1));
            log.append_force(&begin(2));
        }
        // Tear the last record: chop bytes off the file end.
        {
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            let len = f.metadata().unwrap().len();
            f.set_len(len - 3).unwrap();
        }
        let log = LogManager::open_file(&path).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.read(Lsn(1)).unwrap(), Some(begin(1)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_file_drops_truncated_prefix() {
        let dir = std::env::temp_dir().join(format!("obr-wal-cmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let log = LogManager::open_file(&path).unwrap();
        for i in 1..=10 {
            log.append(&begin(i));
        }
        log.flush_all();
        let full = std::fs::metadata(&path).unwrap().len();
        log.truncate_before(Lsn(8));
        log.compact_file().unwrap();
        let compacted = std::fs::metadata(&path).unwrap().len();
        assert!(compacted < full);
        assert_eq!(log.read(Lsn(8)).unwrap(), Some(begin(8)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_appends_get_unique_lsns() {
        let log = std::sync::Arc::new(LogManager::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|i| log.append(&begin(i)).0)
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800);
    }
}
