//! Write-ahead logging for the on-line reorganization system.
//!
//! The log record vocabulary follows §5 of the paper: a reorganization
//! *unit* writes `BEGIN`, one `MOVE` per source page (optionally carrying
//! keys only, under careful writing), `MODIFY` for the base-page key/pointer
//! changes, and `END`. Swaps log one full page image — the paper observes
//! there is no way to avoid that, because careful writing would need a
//! cyclic write order. Pass 3 adds *stable key* records (§7.3) and the final
//! switch record (§7.4). Ordinary transactions log logical record operations
//! with prev-LSN chains for undo, and structure modifications (splits, root
//! growth) log full page images as atomic system actions.
//!
//! [`ReorgStateTable`] is the paper's tiny in-memory system table: LK (the
//! largest key of the last finished unit), and the BEGIN/most-recent LSNs of
//! the at-most-one in-flight unit. It is copied into every checkpoint.

pub mod log;
pub mod reader;
pub mod record;
pub mod reorg_table;
pub mod segment;

pub use log::{LogManager, LogStats, SyncStats};
pub use reader::{LogReader, ScanOutcome, TornReason, TornTail};
pub use record::{
    CheckpointData, LogRecord, MovePayload, Pass3State, ReorgKind, ReorgTableSnapshot, TxnId,
    UnitId,
};
pub use reorg_table::ReorgStateTable;
pub use segment::SegmentMeta;
