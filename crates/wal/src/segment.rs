//! Segment naming and directory layout for the segmented WAL.
//!
//! A segmented log is a directory of files `wal-<first-lsn>.seg`, each
//! holding a contiguous run of `[len: u32 LE][frame]` records in the same
//! byte format as the legacy single-file log (see [`crate::reader`]). The
//! file name carries the LSN of its first record, zero-padded so
//! lexicographic order equals LSN order. Exactly one segment — the one with
//! the highest first-LSN — is *active* (still being appended to); every
//! other segment is *sealed* and immutable.
//!
//! Invariants the layout maintains (and [`crate::LogManager::open_dir`]
//! verifies on reopen):
//!
//! * **Contiguity** — segment `k+1`'s first LSN equals segment `k`'s first
//!   LSN plus the number of records segment `k` holds. A gap means a
//!   recycle deleted a segment out of order (oldest-first deletion makes
//!   that impossible short of external interference) and is reported as
//!   corruption, never silently skipped.
//! * **Sealed segments end clean** — a seal happens only after the batch
//!   that crossed the size threshold is fully written and fsynced, so a
//!   torn record inside a sealed segment is a checker error, not a crash
//!   artifact. Torn-tail truncation applies to the active segment only.
//! * **Recycling is a suffix operation on the directory** — segments are
//!   deleted oldest-first, so a crash mid-recycle leaves a contiguous run
//!   of survivors.

use std::path::{Path, PathBuf};

use obr_storage::Lsn;

/// File-name prefix of every segment file.
pub const SEGMENT_PREFIX: &str = "wal-";
/// File-name extension of every segment file.
pub const SEGMENT_EXT: &str = "seg";
/// Zero-padded width of the first-LSN component (u64 decimal maximum).
const LSN_WIDTH: usize = 20;

/// The file name of the segment whose first record has `first_lsn`.
pub fn segment_file_name(first_lsn: Lsn) -> String {
    format!("{SEGMENT_PREFIX}{:0LSN_WIDTH$}.{SEGMENT_EXT}", first_lsn.0)
}

/// Parse a segment file name back to its first LSN. Returns `None` for
/// anything that is not a well-formed segment name.
pub fn parse_segment_name(name: &str) -> Option<Lsn> {
    let stem = name
        .strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    if stem.len() != LSN_WIDTH || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse::<u64>().ok().map(Lsn)
}

/// List the segment files in `dir`, sorted by first LSN. Non-segment
/// files are ignored. Returns an empty vec for an empty (or absent) dir.
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<(Lsn, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(lsn) = parse_segment_name(name) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort_by_key(|(lsn, _)| *lsn);
    Ok(out)
}

/// Best-effort fsync of a directory so freshly created/deleted segment
/// files survive a crash. Ignored on platforms where directories cannot
/// be opened for sync.
pub fn sync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// One entry of a [`crate::LogManager`] segment catalog: the shippable
/// description of a segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// LSN of the segment's first record.
    pub first_lsn: Lsn,
    /// LSN of the segment's last *durable* record (`first_lsn - 1` when the
    /// segment holds none, i.e. a freshly created active segment).
    pub end_lsn: Lsn,
    /// Path of the backing file.
    pub path: PathBuf,
    /// True for immutable (shippable) segments; false for the one active
    /// segment still receiving appends.
    pub sealed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort_numerically() {
        let names: Vec<String> = [1u64, 9, 10, 150, u64::MAX]
            .iter()
            .map(|&n| segment_file_name(Lsn(n)))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names, "lexicographic order must equal LSN order");
        for (i, &n) in [1u64, 9, 10, 150, u64::MAX].iter().enumerate() {
            assert_eq!(parse_segment_name(&names[i]), Some(Lsn(n)));
        }
    }

    #[test]
    fn parse_rejects_foreign_names() {
        assert_eq!(parse_segment_name("wal.log"), None);
        assert_eq!(parse_segment_name("wal-12.seg"), None, "unpadded");
        assert_eq!(parse_segment_name("wal-0000000000000000000x.seg"), None);
        assert_eq!(parse_segment_name("seg-00000000000000000001.wal"), None);
    }

    #[test]
    fn list_skips_non_segments_and_sorts() {
        let dir = std::env::temp_dir().join(format!("obr-seg-list-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for lsn in [30u64, 1, 7] {
            std::fs::write(dir.join(segment_file_name(Lsn(lsn))), b"").unwrap();
        }
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();
        let got = list_segments(&dir).unwrap();
        let lsns: Vec<u64> = got.iter().map(|(l, _)| l.0).collect();
        assert_eq!(lsns, vec![1, 7, 30]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_of_missing_dir_is_empty() {
        let dir = std::env::temp_dir().join("obr-seg-definitely-missing");
        assert!(list_segments(&dir).unwrap().is_empty());
    }
}
