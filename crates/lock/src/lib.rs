//! The lock manager of §4 of the paper.
//!
//! Beyond the classical IS/IX/S/X modes, the paper introduces three modes:
//!
//! * **R** — held by the reorganizer on base pages while it reads them;
//!   compatible with S so readers keep flowing.
//! * **RX** — held by the reorganizer on the leaf pages of a reorganization
//!   unit. Incompatible with everything, and *different from X in the lock
//!   manager's conflict action*: a request conflicting with a held RX is
//!   **forgone** — the requester gets [`LockError::ConflictsWithReorg`] back
//!   immediately instead of queueing, releases what it holds, and falls back
//!   to an instant-duration RS request on the parent base page.
//! * **RS** — an *unconditional instant-duration* mode (\[Moh90\]): never
//!   actually granted; the call returns success only once the mode would be
//!   grantable, i.e. once the reorganizer has released its R/X lock on the
//!   base page. Incompatible with R (and X), compatible with other readers.
//!
//! Deadlock handling follows §4.1: the reorganizer is always the victim.

pub mod manager;
pub mod mode;

pub use manager::{LockError, LockManager, LockStats, OwnerId, ResourceId};
pub use mode::LockMode;
