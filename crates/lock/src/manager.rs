//! The lock manager: grant queues, conversions, instant-duration requests,
//! the RX "forgo" conflict action, and deadlock detection with the
//! reorganizer as preferred victim.

use obr_sync::atomic::{AtomicU64, Ordering};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

use obr_obs::{Counter, Histogram, Registry};
use obr_sync::{Condvar, Mutex};

use crate::mode::LockMode;

/// Identifies a lock owner (a transaction, a reader, or the reorganizer).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OwnerId(pub u64);

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

impl fmt::Debug for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A lockable resource.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ResourceId {
    /// The large-granularity tree lock. The generation number makes the new
    /// tree's lock name distinct from the old tree's (§7.4).
    Tree(u32),
    /// A page (raw page-id value).
    Page(u32),
    /// A record key (record-level locking, incl. side-file entries).
    Key(u64),
    /// The side-file table lock (§7.2).
    SideFile,
}

/// Why a lock call failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockError {
    /// The request conflicts with a held RX lock: the paper's "forgo"
    /// action. The caller must release its parent base-page lock and fall
    /// back to an instant-duration RS request on it.
    ConflictsWithReorg,
    /// This requester was chosen as the deadlock victim.
    Deadlock,
    /// `try_lock` would have had to wait.
    WouldBlock,
    /// Waited longer than the configured timeout (test safety net).
    Timeout,
    /// The owner requested an unsupported lock conversion.
    BadUpgrade(LockMode, LockMode),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::ConflictsWithReorg => write!(f, "request forgone: conflicts with RX"),
            LockError::Deadlock => write!(f, "deadlock victim"),
            LockError::WouldBlock => write!(f, "would block"),
            LockError::Timeout => write!(f, "lock wait timed out"),
            LockError::BadUpgrade(a, b) => write!(f, "unsupported lock conversion {a} -> {b}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Counters for experiment E4 and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Requests granted immediately.
    pub immediate_grants: u64,
    /// Requests that had to wait before being granted.
    pub waited_grants: u64,
    /// Requests forgone because they conflicted with a held RX.
    pub forgone: u64,
    /// Deadlock victims.
    pub deadlocks: u64,
    /// Instant-duration requests satisfied.
    pub instant_grants: u64,
    /// Total nanoseconds spent blocked across all waiters.
    pub wait_nanos: u64,
}

impl LockStats {
    /// Difference against an earlier snapshot.
    pub fn since(&self, earlier: &LockStats) -> LockStats {
        LockStats {
            immediate_grants: self.immediate_grants - earlier.immediate_grants,
            waited_grants: self.waited_grants - earlier.waited_grants,
            forgone: self.forgone - earlier.forgone,
            deadlocks: self.deadlocks - earlier.deadlocks,
            instant_grants: self.instant_grants - earlier.instant_grants,
            wait_nanos: self.wait_nanos - earlier.wait_nanos,
        }
    }
}

#[derive(Debug)]
struct Waiter {
    owner: OwnerId,
    mode: LockMode,
    ticket: u64,
    /// Set by deadlock detection: this waiter must give up.
    victim: bool,
    /// Instant-duration request: return success when grantable, grant nothing.
    instant: bool,
}

#[derive(Debug, Default)]
struct ResQueue {
    granted: HashMap<OwnerId, LockMode>,
    waiters: Vec<Waiter>,
}

#[derive(Default)]
struct State {
    resources: HashMap<ResourceId, ResQueue>,
    reorg_owners: HashSet<OwnerId>,
}

/// Per-manager metric handles. These atomics are the single source of
/// truth: [`LockManager::stats`] reads them, and
/// [`LockManager::register_metrics`] publishes the same handles into a
/// database's [`Registry`] so snapshots see identical numbers.
#[derive(Debug, Default)]
struct LockMetrics {
    immediate_grants: Counter,
    waited_grants: Counter,
    forgone: Counter,
    deadlocks: Counter,
    instant_grants: Counter,
    wait_nanos: Counter,
    wait_ns: Histogram,
}

/// The lock manager. One global table guarded by a mutex/condvar pair —
/// simple, correct, and fast enough for the scale of the experiments.
///
/// ```
/// use obr_lock::{LockManager, LockMode, OwnerId, ResourceId, LockError};
///
/// let m = LockManager::new();
/// let (reader, reorg) = (OwnerId(1), OwnerId(2));
/// // The reorganizer RX-locks a leaf; a reader's request is *forgone*.
/// m.lock(reorg, ResourceId::Page(7), LockMode::RX).unwrap();
/// assert_eq!(
///     m.lock(reader, ResourceId::Page(7), LockMode::S),
///     Err(LockError::ConflictsWithReorg)
/// );
/// // R on the base page coexists with readers' S locks.
/// m.lock(reorg, ResourceId::Page(1), LockMode::R).unwrap();
/// m.lock(reader, ResourceId::Page(1), LockMode::S).unwrap();
/// ```
pub struct LockManager {
    state: Mutex<State>,
    cv: Condvar,
    tickets: AtomicU64,
    timeout: Duration,
    metrics: LockMetrics,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// Create a lock manager with the default 10-second wait timeout.
    pub fn new() -> LockManager {
        LockManager::with_timeout(Duration::from_secs(10))
    }

    /// Create a lock manager with a custom wait timeout.
    pub fn with_timeout(timeout: Duration) -> LockManager {
        LockManager {
            state: Mutex::named(State::default(), "lockmgr.state"),
            cv: Condvar::new(),
            tickets: AtomicU64::new(0),
            timeout,
            metrics: LockMetrics::default(),
        }
    }

    /// Publish this manager's counters into `reg` under the canonical
    /// `lock_*` names (see DESIGN.md "Observability"). The registry adopts
    /// the live handles, so later snapshots read the same atomics
    /// [`LockManager::stats`] reads.
    pub fn register_metrics(&self, reg: &Registry) {
        reg.register_counter("lock_grants_immediate", &self.metrics.immediate_grants);
        reg.register_counter("lock_grants_waited", &self.metrics.waited_grants);
        reg.register_counter("lock_forgone_rx", &self.metrics.forgone);
        reg.register_counter("lock_deadlocks", &self.metrics.deadlocks);
        reg.register_counter("lock_rs_instant_grants", &self.metrics.instant_grants);
        reg.register_counter("lock_wait_ns_total", &self.metrics.wait_nanos);
        reg.register_histogram("lock_wait_ns", &self.metrics.wait_ns);
    }

    /// Register `owner` as the reorganizer: it becomes the preferred
    /// deadlock victim (§4.1: "we always force the reorganizer to give up").
    pub fn register_reorganizer(&self, owner: OwnerId) {
        self.state.lock().reorg_owners.insert(owner);
    }

    /// Remove the reorganizer registration.
    pub fn unregister_reorganizer(&self, owner: OwnerId) {
        self.state.lock().reorg_owners.remove(&owner);
    }

    /// Counters snapshot (a view over the same atomics the metrics
    /// registry reads).
    pub fn stats(&self) -> LockStats {
        LockStats {
            immediate_grants: self.metrics.immediate_grants.get(),
            waited_grants: self.metrics.waited_grants.get(),
            forgone: self.metrics.forgone.get(),
            deadlocks: self.metrics.deadlocks.get(),
            instant_grants: self.metrics.instant_grants.get(),
            wait_nanos: self.metrics.wait_nanos.get(),
        }
    }

    /// Blocking lock acquisition (with conversion support).
    pub fn lock(&self, owner: OwnerId, res: ResourceId, mode: LockMode) -> Result<(), LockError> {
        self.lock_inner(
            owner, res, mode, /*try_only=*/ false, /*instant=*/ false,
        )
    }

    /// Non-blocking acquisition: fails with [`LockError::WouldBlock`]
    /// (or [`LockError::ConflictsWithReorg`]) instead of waiting.
    pub fn try_lock(
        &self,
        owner: OwnerId,
        res: ResourceId,
        mode: LockMode,
    ) -> Result<(), LockError> {
        self.lock_inner(owner, res, mode, true, false)
    }

    /// Unconditional instant-duration request (\[Moh90\], §4): waits until the
    /// mode would be grantable, then returns success *without granting*.
    pub fn lock_instant(
        &self,
        owner: OwnerId,
        res: ResourceId,
        mode: LockMode,
    ) -> Result<(), LockError> {
        self.lock_inner(owner, res, mode, false, true)
    }

    fn lock_inner(
        &self,
        owner: OwnerId,
        res: ResourceId,
        mode: LockMode,
        try_only: bool,
        instant: bool,
    ) -> Result<(), LockError> {
        let deadline = Instant::now() + self.timeout;
        let ticket = self.tickets.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        let mut enqueued = false;
        let wait_start = Instant::now();
        loop {
            match Self::check_grant(&mut st, owner, res, mode, ticket, enqueued, instant) {
                GrantCheck::Granted => {
                    if enqueued {
                        Self::remove_waiter(&mut st, res, ticket);
                        let waited = wait_start.elapsed().as_nanos() as u64;
                        self.metrics.wait_nanos.add(waited);
                        self.metrics.wait_ns.record(waited);
                        if instant {
                            self.metrics.instant_grants.inc();
                        } else {
                            self.metrics.waited_grants.inc();
                        }
                        // Others behind us may now be grantable too.
                        self.cv.notify_all();
                    } else if instant {
                        self.metrics.instant_grants.inc();
                    } else {
                        self.metrics.immediate_grants.inc();
                    }
                    return Ok(());
                }
                GrantCheck::ConflictsWithRx => {
                    if enqueued {
                        Self::remove_waiter(&mut st, res, ticket);
                        self.cv.notify_all();
                    }
                    self.metrics.forgone.inc();
                    return Err(LockError::ConflictsWithReorg);
                }
                GrantCheck::BadUpgrade(a, b) => {
                    if enqueued {
                        Self::remove_waiter(&mut st, res, ticket);
                        self.cv.notify_all();
                    }
                    return Err(LockError::BadUpgrade(a, b));
                }
                GrantCheck::MustWait => {
                    if try_only {
                        return Err(LockError::WouldBlock);
                    }
                    if !enqueued {
                        st.resources.entry(res).or_default().waiters.push(Waiter {
                            owner,
                            mode,
                            ticket,
                            victim: false,
                            instant,
                        });
                        enqueued = true;
                    }
                    // Deadlock detection before sleeping.
                    if let Some(victim_ticket) = Self::find_deadlock_victim(&st, owner, res) {
                        if victim_ticket == ticket {
                            Self::remove_waiter(&mut st, res, ticket);
                            self.metrics.deadlocks.inc();
                            self.cv.notify_all();
                            return Err(LockError::Deadlock);
                        }
                        Self::mark_victim(&mut st, victim_ticket);
                        self.cv.notify_all();
                        // Loop around: the victim will dequeue itself.
                    }
                    let timed_out = self.cv.wait_until(&mut st, deadline).timed_out();
                    // Were we chosen as a victim while sleeping?
                    if Self::is_victim(&st, res, ticket) {
                        Self::remove_waiter(&mut st, res, ticket);
                        self.metrics.deadlocks.inc();
                        self.cv.notify_all();
                        return Err(LockError::Deadlock);
                    }
                    if timed_out {
                        Self::remove_waiter(&mut st, res, ticket);
                        self.cv.notify_all();
                        return Err(LockError::Timeout);
                    }
                }
            }
        }
    }

    /// Release `owner`'s lock on `res`.
    pub fn unlock(&self, owner: OwnerId, res: ResourceId) {
        let mut st = self.state.lock();
        if let Some(q) = st.resources.get_mut(&res) {
            q.granted.remove(&owner);
            if q.granted.is_empty() && q.waiters.is_empty() {
                st.resources.remove(&res);
            }
        }
        self.cv.notify_all();
    }

    /// Release everything `owner` holds. Returns the resources released.
    pub fn release_all(&self, owner: OwnerId) -> Vec<ResourceId> {
        let mut st = self.state.lock();
        let mut released = Vec::new();
        st.resources.retain(|res, q| {
            if q.granted.remove(&owner).is_some() {
                released.push(*res);
            }
            !(q.granted.is_empty() && q.waiters.is_empty())
        });
        self.cv.notify_all();
        released
    }

    /// Downgrade `owner`'s lock on `res` to `mode` (e.g. S -> IS after
    /// reading a page while keeping record locks).
    pub fn downgrade(&self, owner: OwnerId, res: ResourceId, mode: LockMode) {
        let mut st = self.state.lock();
        if let Some(q) = st.resources.get_mut(&res) {
            if let Some(held) = q.granted.get_mut(&owner) {
                *held = mode;
            }
        }
        self.cv.notify_all();
    }

    /// Mode `owner` currently holds on `res`.
    pub fn held_mode(&self, owner: OwnerId, res: ResourceId) -> Option<LockMode> {
        self.state
            .lock()
            .resources
            .get(&res)
            .and_then(|q| q.granted.get(&owner).copied())
    }

    /// All `(owner, mode)` pairs granted on `res`.
    pub fn holders(&self, res: ResourceId) -> Vec<(OwnerId, LockMode)> {
        self.state
            .lock()
            .resources
            .get(&res)
            .map(|q| {
                let mut v: Vec<_> = q.granted.iter().map(|(o, m)| (*o, *m)).collect();
                v.sort_by_key(|(o, _)| *o);
                v
            })
            .unwrap_or_default()
    }

    /// Resources `owner` currently holds locks on.
    pub fn held_resources(&self, owner: OwnerId) -> Vec<ResourceId> {
        self.state
            .lock()
            .resources
            .iter()
            .filter(|(_, q)| q.granted.contains_key(&owner))
            .map(|(r, _)| *r)
            .collect()
    }

    fn check_grant(
        st: &mut State,
        owner: OwnerId,
        res: ResourceId,
        mode: LockMode,
        ticket: u64,
        enqueued: bool,
        instant: bool,
    ) -> GrantCheck {
        let q = st.resources.entry(res).or_default();
        let held = q.granted.get(&owner).copied();
        // Already covered: nothing to do.
        if let Some(h) = held {
            if h.covers(mode) {
                return GrantCheck::Granted;
            }
        }
        let target = match held {
            Some(h) => match h.join(mode) {
                Some(t) => t,
                None => return GrantCheck::BadUpgrade(h, mode),
            },
            None => mode,
        };
        // Compatible with every *other* granted lock?
        let mut conflicts_with_rx = false;
        let compatible_with_granted = q.granted.iter().all(|(o, m)| {
            if *o == owner {
                return true;
            }
            let ok = m.compatible_with(target);
            if !ok && *m == LockMode::RX {
                conflicts_with_rx = true;
            }
            ok
        });
        if !compatible_with_granted {
            // The paper's RX conflict action: forgo, do not queue. The
            // reorganizer itself (requesting RX against another RX of its
            // own) was already filtered by the `*o == owner` arm.
            if conflicts_with_rx {
                return GrantCheck::ConflictsWithRx;
            }
            return GrantCheck::MustWait;
        }
        // Conversions jump the queue (standard, and required for the
        // reorganizer's R -> X upgrade not to deadlock with its own waiters).
        let is_conversion = held.is_some();
        if !is_conversion {
            // Fairness: do not overtake earlier conflicting waiters.
            let blocked_by_waiter = q.waiters.iter().any(|w| {
                let ahead = if enqueued { w.ticket < ticket } else { true };
                // Instant-duration waiters grant nothing, so they never gate
                // later requests.
                ahead
                    && !w.instant
                    && w.owner != owner
                    && !w.victim
                    && !(w.mode.compatible_with(target) && target.compatible_with(w.mode))
            });
            if blocked_by_waiter {
                return GrantCheck::MustWait;
            }
        }
        if !instant {
            q.granted.insert(owner, target);
        }
        GrantCheck::Granted
    }

    fn remove_waiter(st: &mut State, res: ResourceId, ticket: u64) {
        if let Some(q) = st.resources.get_mut(&res) {
            q.waiters.retain(|w| w.ticket != ticket);
            if q.granted.is_empty() && q.waiters.is_empty() {
                st.resources.remove(&res);
            }
        }
    }

    fn mark_victim(st: &mut State, ticket: u64) {
        for q in st.resources.values_mut() {
            for w in &mut q.waiters {
                if w.ticket == ticket {
                    w.victim = true;
                    return;
                }
            }
        }
    }

    fn is_victim(st: &State, res: ResourceId, ticket: u64) -> bool {
        st.resources
            .get(&res)
            .map(|q| q.waiters.iter().any(|w| w.ticket == ticket && w.victim))
            .unwrap_or(false)
    }

    /// Build the waits-for graph and look for a cycle through `owner`'s wait
    /// on `res`. Returns the *ticket* of the chosen victim when a cycle is
    /// found: the reorganizer's waiting request if one is in the cycle,
    /// otherwise the requester's own.
    fn find_deadlock_victim(st: &State, owner: OwnerId, res: ResourceId) -> Option<u64> {
        // waits-for: waiting owner -> owners it waits on.
        let mut edges: HashMap<OwnerId, HashSet<OwnerId>> = HashMap::new();
        for q in st.resources.values() {
            for w in &q.waiters {
                if w.victim {
                    continue;
                }
                let deps = edges.entry(w.owner).or_default();
                for (o, m) in &q.granted {
                    if *o != w.owner && !m.compatible_with(w.mode) {
                        deps.insert(*o);
                    }
                }
                // Earlier conflicting waiters also block us (fairness rule).
                for v in &q.waiters {
                    if v.ticket < w.ticket && v.owner != w.owner && !v.victim {
                        let conflict =
                            !(v.mode.compatible_with(w.mode) && w.mode.compatible_with(v.mode));
                        if conflict {
                            deps.insert(v.owner);
                        }
                    }
                }
            }
        }
        // DFS from `owner` looking for a cycle back to `owner`.
        let mut cycle: Vec<OwnerId> = Vec::new();
        let mut visited: HashSet<OwnerId> = HashSet::new();
        if !Self::dfs_cycle(&edges, owner, owner, &mut visited, &mut cycle) {
            return None;
        }
        cycle.push(owner);
        // Victim preference: a reorganizer in the cycle that is waiting.
        for o in &cycle {
            if st.reorg_owners.contains(o) {
                if let Some(t) = Self::waiting_ticket_of(st, *o) {
                    return Some(t);
                }
            }
        }
        // Otherwise pick deterministically — the youngest waiting request in
        // the cycle — so concurrent detectors agree on a single victim.
        let _ = res;
        cycle
            .iter()
            .filter_map(|o| Self::waiting_ticket_of(st, *o))
            .max()
    }

    fn dfs_cycle(
        edges: &HashMap<OwnerId, HashSet<OwnerId>>,
        start: OwnerId,
        at: OwnerId,
        visited: &mut HashSet<OwnerId>,
        cycle: &mut Vec<OwnerId>,
    ) -> bool {
        if let Some(next) = edges.get(&at) {
            for &n in next {
                if n == start {
                    return true;
                }
                if visited.insert(n) && Self::dfs_cycle(edges, start, n, visited, cycle) {
                    cycle.push(n);
                    return true;
                }
            }
        }
        false
    }

    fn waiting_ticket_of(st: &State, owner: OwnerId) -> Option<u64> {
        for q in st.resources.values() {
            for w in &q.waiters {
                if w.owner == owner && !w.victim {
                    return Some(w.ticket);
                }
            }
        }
        None
    }

    /// Internal consistency check (tests/diagnostics): every pair of locks
    /// granted on the same resource to *different* owners must be mutually
    /// compatible. Returns the violations found.
    pub fn validate_invariants(&self) -> Vec<String> {
        let st = self.state.lock();
        let mut violations = Vec::new();
        for (res, q) in &st.resources {
            let granted: Vec<(OwnerId, LockMode)> =
                q.granted.iter().map(|(o, m)| (*o, *m)).collect();
            for (i, &(o1, m1)) in granted.iter().enumerate() {
                for &(o2, m2) in &granted[i + 1..] {
                    if o1 != o2 && !(m1.compatible_with(m2) && m2.compatible_with(m1)) {
                        violations.push(format!(
                            "{res:?}: {o1} holds {m1} alongside {o2} holding {m2}"
                        ));
                    }
                }
            }
            // No waiter may be marked granted.
            for w in &q.waiters {
                if q.granted.contains_key(&w.owner) && q.granted[&w.owner] == w.mode {
                    violations.push(format!(
                        "{res:?}: {} both granted and waiting for {}",
                        w.owner, w.mode
                    ));
                }
            }
        }
        violations
    }

    /// Render the realized compatibility matrix (experiment E1). Cells the
    /// paper leaves blank print as `-`.
    pub fn compatibility_table() -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{:>8} |", "granted");
        for r in LockMode::ALL {
            let _ = write!(out, "{r:>4}");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(10 + 4 * LockMode::ALL.len()));
        for g in LockMode::GRANTABLE {
            let _ = write!(out, "{g:>8} |");
            for r in LockMode::ALL {
                let cell = if !g.compatibility_is_defined(r) {
                    "-"
                } else if g.compatible_with(r) {
                    "Yes"
                } else {
                    "No"
                };
                let _ = write!(out, "{cell:>4}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[derive(Debug)]
enum GrantCheck {
    Granted,
    MustWait,
    ConflictsWithRx,
    BadUpgrade(LockMode, LockMode),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use LockMode::*;

    const PAGE: ResourceId = ResourceId::Page(1);
    const BASE: ResourceId = ResourceId::Page(100);

    fn mgr() -> Arc<LockManager> {
        Arc::new(LockManager::with_timeout(Duration::from_secs(5)))
    }

    #[test]
    fn shared_locks_coexist() {
        let m = mgr();
        m.lock(OwnerId(1), PAGE, S).unwrap();
        m.lock(OwnerId(2), PAGE, S).unwrap();
        assert_eq!(m.holders(PAGE).len(), 2);
    }

    #[test]
    fn x_blocks_until_release() {
        let m = mgr();
        m.lock(OwnerId(1), PAGE, S).unwrap();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || m2.lock(OwnerId(2), PAGE, X));
        thread::sleep(Duration::from_millis(50));
        assert!(!h.is_finished());
        m.unlock(OwnerId(1), PAGE);
        h.join().unwrap().unwrap();
        assert_eq!(m.held_mode(OwnerId(2), PAGE), Some(X));
    }

    #[test]
    fn rx_conflict_is_forgone_not_queued() {
        let m = mgr();
        m.lock(OwnerId(9), PAGE, RX).unwrap();
        // A reader's S request must come back immediately with the signal.
        let start = Instant::now();
        let err = m.lock(OwnerId(1), PAGE, S).unwrap_err();
        assert_eq!(err, LockError::ConflictsWithReorg);
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(m.stats().forgone, 1);
        // An updater's X and IX requests too.
        assert_eq!(
            m.lock(OwnerId(2), PAGE, X).unwrap_err(),
            LockError::ConflictsWithReorg
        );
        assert_eq!(
            m.lock(OwnerId(3), PAGE, IX).unwrap_err(),
            LockError::ConflictsWithReorg
        );
    }

    #[test]
    fn r_and_s_share_a_base_page() {
        let m = mgr();
        m.lock(OwnerId(9), BASE, R).unwrap();
        m.lock(OwnerId(1), BASE, S).unwrap();
        // And in the other order.
        let m2 = mgr();
        m2.lock(OwnerId(1), BASE, S).unwrap();
        m2.lock(OwnerId(9), BASE, R).unwrap();
    }

    #[test]
    fn instant_rs_waits_for_reorganizer_and_grants_nothing() {
        let m = mgr();
        m.lock(OwnerId(9), BASE, R).unwrap();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || m2.lock_instant(OwnerId(1), BASE, RS));
        thread::sleep(Duration::from_millis(50));
        assert!(!h.is_finished(), "RS must wait while R is held");
        m.unlock(OwnerId(9), BASE);
        h.join().unwrap().unwrap();
        // Instant duration: nothing is actually held afterwards.
        assert_eq!(m.held_mode(OwnerId(1), BASE), None);
        assert_eq!(m.stats().instant_grants, 1);
    }

    #[test]
    fn instant_rs_passes_through_plain_readers() {
        let m = mgr();
        m.lock(OwnerId(1), BASE, S).unwrap();
        // Another reader holding S must not block RS.
        m.lock_instant(OwnerId(2), BASE, RS).unwrap();
    }

    #[test]
    fn r_upgrades_to_x_when_readers_leave() {
        let m = mgr();
        m.lock(OwnerId(9), BASE, R).unwrap();
        m.lock(OwnerId(1), BASE, S).unwrap();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || m2.lock(OwnerId(9), BASE, X));
        thread::sleep(Duration::from_millis(50));
        assert!(!h.is_finished(), "upgrade must wait for the reader");
        m.unlock(OwnerId(1), BASE);
        h.join().unwrap().unwrap();
        assert_eq!(m.held_mode(OwnerId(9), BASE), Some(X));
    }

    #[test]
    fn reacquiring_covered_mode_is_noop() {
        let m = mgr();
        m.lock(OwnerId(1), PAGE, X).unwrap();
        m.lock(OwnerId(1), PAGE, S).unwrap();
        m.lock(OwnerId(1), PAGE, X).unwrap();
        assert_eq!(m.held_mode(OwnerId(1), PAGE), Some(X));
        m.unlock(OwnerId(1), PAGE);
        assert_eq!(m.held_mode(OwnerId(1), PAGE), None);
    }

    #[test]
    fn try_lock_reports_would_block() {
        let m = mgr();
        m.lock(OwnerId(1), PAGE, X).unwrap();
        assert_eq!(
            m.try_lock(OwnerId(2), PAGE, S).unwrap_err(),
            LockError::WouldBlock
        );
    }

    #[test]
    fn release_all_frees_every_resource() {
        let m = mgr();
        m.lock(OwnerId(1), PAGE, S).unwrap();
        m.lock(OwnerId(1), BASE, S).unwrap();
        m.lock(OwnerId(1), ResourceId::Key(7), X).unwrap();
        let mut released = m.release_all(OwnerId(1));
        released.sort_by_key(|r| format!("{r:?}"));
        assert_eq!(released.len(), 3);
        assert_eq!(m.held_mode(OwnerId(1), PAGE), None);
    }

    #[test]
    fn downgrade_lets_writers_in() {
        let m = mgr();
        m.lock(OwnerId(1), PAGE, S).unwrap();
        m.downgrade(OwnerId(1), PAGE, IS);
        // IX is compatible with IS.
        m.lock(OwnerId(2), PAGE, IX).unwrap();
    }

    #[test]
    fn fairness_no_overtaking_a_waiting_x() {
        let m = mgr();
        m.lock(OwnerId(1), PAGE, S).unwrap();
        let m2 = Arc::clone(&m);
        let hx = thread::spawn(move || m2.lock(OwnerId(2), PAGE, X));
        thread::sleep(Duration::from_millis(50));
        // A new S request must not starve the waiting X.
        let m3 = Arc::clone(&m);
        let hs = thread::spawn(move || m3.lock(OwnerId(3), PAGE, S));
        thread::sleep(Duration::from_millis(50));
        assert!(!hs.is_finished(), "S must queue behind the waiting X");
        m.unlock(OwnerId(1), PAGE);
        hx.join().unwrap().unwrap();
        m.unlock(OwnerId(2), PAGE);
        hs.join().unwrap().unwrap();
    }

    #[test]
    fn deadlock_victimizes_the_reorganizer() {
        let m = mgr();
        m.register_reorganizer(OwnerId(9));
        let a = ResourceId::Page(1);
        let b = ResourceId::Page(2);
        // User transaction holds A; reorganizer holds B.
        m.lock(OwnerId(1), a, X).unwrap();
        m.lock(OwnerId(9), b, X).unwrap();
        // Reorganizer waits for A.
        let m2 = Arc::clone(&m);
        let h9 = thread::spawn(move || m2.lock(OwnerId(9), a, X));
        thread::sleep(Duration::from_millis(50));
        // User transaction now waits for B: deadlock; reorganizer must lose.
        let m3 = Arc::clone(&m);
        let h1 = thread::spawn(move || m3.lock(OwnerId(1), b, X));
        let r9 = h9.join().unwrap();
        assert_eq!(r9.unwrap_err(), LockError::Deadlock);
        // The user transaction gets B once the reorganizer (per §4.1) gives
        // up its locks.
        m.release_all(OwnerId(9));
        h1.join().unwrap().unwrap();
        assert_eq!(m.stats().deadlocks, 1);
    }

    #[test]
    fn deadlock_between_users_victimizes_a_requester() {
        let m = mgr();
        let a = ResourceId::Page(1);
        let b = ResourceId::Page(2);
        m.lock(OwnerId(1), a, X).unwrap();
        m.lock(OwnerId(2), b, X).unwrap();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || m2.lock(OwnerId(1), b, X));
        thread::sleep(Duration::from_millis(50));
        // Owner 2's request is the youngest in the cycle: it is the victim.
        let r2 = m.lock(OwnerId(2), a, X);
        assert_eq!(r2.unwrap_err(), LockError::Deadlock);
        // Aborting the victim releases its locks; the survivor proceeds.
        m.release_all(OwnerId(2));
        h.join().unwrap().unwrap();
        assert_eq!(m.stats().deadlocks, 1);
    }

    #[test]
    fn timeout_fires_instead_of_hanging() {
        let m = Arc::new(LockManager::with_timeout(Duration::from_millis(100)));
        m.lock(OwnerId(1), PAGE, X).unwrap();
        let err = m.lock(OwnerId(2), PAGE, S).unwrap_err();
        assert_eq!(err, LockError::Timeout);
    }

    #[test]
    fn bad_upgrade_is_reported() {
        let m = mgr();
        m.lock(OwnerId(1), PAGE, RX).unwrap();
        assert!(matches!(
            m.lock(OwnerId(1), PAGE, IS).unwrap_err(),
            LockError::BadUpgrade(RX, IS)
        ));
    }

    #[test]
    fn distinct_tree_locks_do_not_interfere() {
        // §7.4: the new tree has a lock name distinct from the old tree.
        let m = mgr();
        m.lock(OwnerId(1), ResourceId::Tree(0), X).unwrap();
        m.lock(OwnerId(2), ResourceId::Tree(1), X).unwrap();
    }

    #[test]
    fn compatibility_table_prints_all_rows() {
        let t = LockManager::compatibility_table();
        for g in LockMode::GRANTABLE {
            assert!(t.contains(&g.to_string()));
        }
        assert!(t.contains("Yes"));
        assert!(t.contains("No"));
        assert!(t.contains('-'));
    }

    #[test]
    fn invariants_hold_under_mixed_mode_stress() {
        let m = mgr();
        m.register_reorganizer(OwnerId(100));
        let stop = obr_sync::atomic::AtomicBool::new(false);
        let violations = obr_sync::Mutex::new(Vec::new());
        thread::scope(|s| {
            // A checker thread samples the invariant continuously.
            let m1 = &m;
            let stop1 = &stop;
            let violations1 = &violations;
            s.spawn(move || {
                let m = m1;
                let stop = stop1;
                let violations = violations1;
                while !stop.load(obr_sync::atomic::Ordering::Relaxed) {
                    let v = m.validate_invariants();
                    if !v.is_empty() {
                        violations.lock().extend(v);
                        stop.store(true, obr_sync::atomic::Ordering::Relaxed);
                    }
                }
            });
            // A "reorganizer" cycling R -> RX -> X upgrades.
            let m2 = &m;
            let stop2 = &stop;
            s.spawn(move || {
                let m = m2;
                let stop = stop2;
                for i in 0..300u32 {
                    let base = ResourceId::Page(i % 4);
                    let leaf = ResourceId::Page(100 + (i % 8));
                    let o = OwnerId(100);
                    if m.lock(o, base, R).is_ok()
                        && m.lock(o, leaf, RX).is_ok()
                        && m.lock(o, base, X).is_ok()
                    {
                        // moved records, modified base
                    }
                    m.release_all(o);
                }
                stop.store(true, obr_sync::atomic::Ordering::Relaxed);
            });
            // Reader/updater threads with the forgo-then-RS protocol.
            for t in 0..4u64 {
                let m3 = &m;
                let stop3 = &stop;
                s.spawn(move || {
                    let m = m3;
                    let stop = stop3;
                    let o = OwnerId(t + 1);
                    let mut i = t;
                    while !stop.load(obr_sync::atomic::Ordering::Relaxed) {
                        i += 1;
                        let base = ResourceId::Page((i % 4) as u32);
                        let leaf = ResourceId::Page(100 + (i % 8) as u32);
                        let mode = if i % 2 == 0 { S } else { IX };
                        if m.lock(o, base, S).is_ok() {
                            match m.lock(o, leaf, mode) {
                                Ok(()) => {}
                                Err(LockError::ConflictsWithReorg) => {
                                    m.unlock(o, base);
                                    let _ = m.lock_instant(o, base, RS);
                                }
                                Err(_) => {}
                            }
                        }
                        m.release_all(o);
                    }
                });
            }
        });
        let v = violations.into_inner();
        assert!(v.is_empty(), "invariant violations: {v:?}");
    }

    #[test]
    fn stress_many_owners_many_resources() {
        let m = mgr();
        thread::scope(|s| {
            for t in 0..8u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..200u64 {
                        let res = ResourceId::Page(((t * 7 + i) % 16) as u32);
                        let mode = if i % 3 == 0 { X } else { S };
                        match m.lock(OwnerId(t + 1), res, mode) {
                            Ok(()) => m.unlock(OwnerId(t + 1), res),
                            Err(LockError::Deadlock) | Err(LockError::Timeout) => {
                                m.release_all(OwnerId(t + 1));
                            }
                            Err(e) => panic!("unexpected {e}"),
                        }
                    }
                });
            }
        });
        // Nothing left behind.
        for p in 0..16 {
            assert!(m.holders(ResourceId::Page(p)).is_empty());
        }
    }
}
