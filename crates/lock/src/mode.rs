//! Lock modes and the Table-1 compatibility matrix.

use std::fmt;

/// A lock mode. `R`, `RX`, and `RS` are the paper's additions (§4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockMode {
    /// Intention share (tree lock / record-level locking on leaves).
    IS,
    /// Intention exclusive (tree lock / record-level locking on leaves).
    IX,
    /// Share.
    S,
    /// Exclusive.
    X,
    /// Reorganizer read lock on base pages; compatible with S.
    R,
    /// Reorganizer exclusive on leaf pages; conflicting requests are
    /// *forgone*, not queued.
    RX,
    /// Instant-duration mode used by blocked readers/updaters on the base
    /// page; never actually granted.
    RS,
}

impl LockMode {
    /// All modes, in the paper's Table-1 order.
    pub const ALL: [LockMode; 7] = [
        LockMode::IS,
        LockMode::IX,
        LockMode::S,
        LockMode::X,
        LockMode::R,
        LockMode::RX,
        LockMode::RS,
    ];

    /// Modes that can be *held* (RS is instant-duration and never granted,
    /// so it has no row in the granted dimension of Table 1).
    pub const GRANTABLE: [LockMode; 6] = [
        LockMode::IS,
        LockMode::IX,
        LockMode::S,
        LockMode::X,
        LockMode::R,
        LockMode::RX,
    ];

    /// Table 1: is `requested` compatible with a held `self`?
    ///
    /// The paper leaves some cells blank ("won't be requested together by
    /// different requesters", e.g. leaf-only vs base-only modes); those are
    /// resolved conservatively as shown by [`compatibility_is_defined`].
    ///
    /// [`compatibility_is_defined`]: LockMode::compatibility_is_defined
    pub fn compatible_with(self, requested: LockMode) -> bool {
        use LockMode::*;
        match (self, requested) {
            // RX is compatible with nothing, in either direction.
            (RX, _) | (_, RX) => false,
            // X is compatible with nothing.
            (X, _) | (_, X) => false,
            // RS requested: blocked exactly by the reorganizer's base-page
            // modes (R, and X via the arm above); readers don't block it.
            (R, RS) => false,
            (_, RS) => true,
            // RS is never granted, but resolve the row conservatively.
            (RS, _) => true,
            // R: read-only, so compatible with other read-only modes.
            (R, S) | (S, R) | (R, R) | (R, IS) | (IS, R) => true,
            (R, IX) | (IX, R) => false,
            // Classical core.
            (IS, IS) | (IS, IX) | (IS, S) => true,
            (IX, IS) | (IX, IX) => true,
            (IX, S) => false,
            (S, IS) | (S, S) => true,
            (S, IX) => false,
        }
    }

    /// True when the paper's Table 1 explicitly fills in this cell;
    /// false for cells the paper leaves blank (mode pairs that are never
    /// requested together by different requesters).
    /// Mode usage by page level: IS/IX/S/X/RX occur on leaf pages (and
    /// IS/IX on the tree lock); S/X/R/RS occur on base pages. A cell is
    /// blank when its two modes never meet on the same resource.
    pub fn compatibility_is_defined(self, requested: LockMode) -> bool {
        use LockMode::*;
        !matches!(
            (self, requested),
            (RS, _)
                | (IS, R)
                | (IS, RS)
                | (IX, R)
                | (IX, RS)
                | (R, IS)
                | (R, IX)
                | (RX, R)
                | (RX, RS)
        )
    }

    /// True when holding `self` also satisfies a request for `other`
    /// (no second lock needed).
    pub fn covers(self, other: LockMode) -> bool {
        use LockMode::*;
        if self == other {
            return true;
        }
        match (self, other) {
            (X, _) => true,
            (S, IS) => true,
            (IX, IS) => true,
            (RX, X) => false, // RX and X differ in conflict action; never substitute
            _ => false,
        }
    }

    /// The combined mode when an owner holding `self` requests `other`
    /// (lock conversion), when supported.
    pub fn join(self, other: LockMode) -> Option<LockMode> {
        use LockMode::*;
        if self.covers(other) {
            return Some(self);
        }
        if other.covers(self) {
            return Some(other);
        }
        match (self, other) {
            (IS, IX) | (IX, IS) => Some(IX),
            (S, IX) | (IX, S) => Some(X), // SIX is not modelled; escalate
            (R, X) | (X, R) => Some(X),   // the reorganizer's base-page upgrade
            (S, R) | (R, S) => Some(R),
            (R, RX) | (RX, R) => Some(RX),
            _ => None,
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockMode::IS => "IS",
            LockMode::IX => "IX",
            LockMode::S => "S",
            LockMode::X => "X",
            LockMode::R => "R",
            LockMode::RX => "RX",
            LockMode::RS => "RS",
        };
        f.pad(s)
    }
}

#[cfg(test)]
mod tests {
    use super::LockMode::*;
    use super::*;

    /// The compatibility cells stated explicitly in the paper's Table 1 and
    /// accompanying text.
    #[test]
    fn matrix_matches_paper_table_1() {
        // Classical core.
        assert!(IS.compatible_with(IS));
        assert!(IS.compatible_with(IX));
        assert!(IS.compatible_with(S));
        assert!(!IS.compatible_with(X));
        assert!(IX.compatible_with(IS));
        assert!(IX.compatible_with(IX));
        assert!(!IX.compatible_with(S));
        assert!(!IX.compatible_with(X));
        assert!(S.compatible_with(IS));
        assert!(!S.compatible_with(IX));
        assert!(S.compatible_with(S));
        assert!(!S.compatible_with(X));
        for m in LockMode::ALL {
            assert!(!X.compatible_with(m), "X must conflict with {m}");
        }
        // "The R mode ... is compatible with the S lock."
        assert!(R.compatible_with(S));
        assert!(S.compatible_with(R));
        // "The RX mode is not compatible with any lock mode."
        for m in LockMode::GRANTABLE {
            assert!(!RX.compatible_with(m), "RX must conflict with {m}");
            assert!(!m.compatible_with(RX), "{m} must conflict with RX");
        }
        // "The RS mode is not compatible with R."
        assert!(!R.compatible_with(RS));
        // RS must not be blocked by ordinary readers on the base page.
        assert!(S.compatible_with(RS));
    }

    #[test]
    fn rs_is_blocked_exactly_by_reorganizer_modes_on_base_pages() {
        // While the reorganizer holds R, or has upgraded to X, RS waits.
        assert!(!R.compatible_with(RS));
        assert!(!X.compatible_with(RS));
        // Once those are gone, RS becomes grantable even with readers around.
        assert!(S.compatible_with(RS));
        assert!(IS.compatible_with(RS));
    }

    #[test]
    fn covers_is_reflexive_and_x_dominates() {
        for m in LockMode::ALL {
            assert!(m.covers(m));
        }
        for m in LockMode::ALL {
            assert!(X.covers(m));
        }
        assert!(S.covers(IS));
        assert!(!IS.covers(S));
        assert!(!RX.covers(X));
    }

    #[test]
    fn join_supports_the_paper_upgrade() {
        // The reorganizer upgrades its R lock on base pages to X (§4.1.1).
        assert_eq!(R.join(X), Some(X));
        assert_eq!(IS.join(IX), Some(IX));
        assert_eq!(S.join(X), Some(X));
        assert_eq!(R.join(RX), Some(RX));
        assert_eq!(RX.join(S), None);
    }

    #[test]
    fn defined_cells_cover_the_printed_table() {
        // Every classical cell is defined.
        for g in [IS, IX, S, X] {
            for r in [IS, IX, S, X] {
                assert!(g.compatibility_is_defined(r), "{g} x {r}");
            }
        }
        // Blanks: RS never appears as granted.
        for r in LockMode::ALL {
            assert!(!RS.compatibility_is_defined(r));
        }
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = LockMode::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(names, vec!["IS", "IX", "S", "X", "R", "RX", "RS"]);
    }
}
