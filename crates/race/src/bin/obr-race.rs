//! `obr-race` — deterministic interleaving explorer CLI.
//!
//! Runs the seven scripted concurrency scenarios under the model
//! scheduler, sweeping seeded-random schedules and (optionally) a
//! bounded exhaustive enumeration with DPOR-lite pruning, then checks
//! the observed lock-acquisition-order edges against the committed
//! manifest. Requires a model build:
//!
//! ```text
//! RUSTFLAGS="--cfg obr_model" cargo run -p obr-race -- [OPTIONS]
//! ```
//!
//! Options:
//!
//! - `--scenario NAME` — run one scenario instead of all seven
//! - `--seeds N` — random schedules per scenario (default 2500)
//! - `--seed-base S` — first seed of the sweep (default 1)
//! - `--exhaustive N` — additionally run up to N exhaustive
//!   (DPOR-pruned) schedules per scenario (default 0 = off)
//! - `--max-steps N` — per-run scheduling-decision budget
//! - `--min-distinct N` — fail unless the sweep covered at least N
//!   distinct schedules in total
//! - `--lockorder PATH` — diff observed lock-order edges against the
//!   manifest at PATH
//! - `--report PATH` — write the coverage report to PATH as well as
//!   stdout
//! - `--print-edges` — print every observed `(held -> acquired)` edge
//!   (the raw material for the manifest)
//! - `--replay-seed S` — replay one seed (requires `--scenario`) and
//!   dump its full trace
//! - `--list` — list scenarios and exit
//!
//! Exit codes: `0` clean; `1` a schedule failed (assertion, deadlock, or
//! panic — the failing seed/choices are printed); `2` distinct-schedule
//! coverage fell short of `--min-distinct`; `3` lock-order diff found
//! violations; `64` usage error; `65` not a model build.

use std::process::ExitCode;

/// Parsed command line; field meanings mirror the option list above.
struct Options {
    scenario: Option<String>,
    seeds: u64,
    seed_base: u64,
    exhaustive: u64,
    max_steps: usize,
    min_distinct: Option<u64>,
    lockorder: Option<String>,
    report: Option<String>,
    print_edges: bool,
    replay_seed: Option<u64>,
    list: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scenario: None,
            seeds: 2500,
            seed_base: 1,
            exhaustive: 0,
            max_steps: 20_000,
            min_distinct: None,
            lockorder: None,
            report: None,
            print_edges: false,
            replay_seed: None,
            list: false,
        }
    }
}

fn usage() {
    eprintln!(
        "usage: obr-race [--scenario NAME] [--seeds N] [--seed-base S] \
         [--exhaustive N] [--max-steps N] [--min-distinct N] \
         [--lockorder PATH] [--report PATH] [--print-edges] \
         [--replay-seed S] [--list]"
    );
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => o.scenario = Some(value("--scenario")?),
            "--seeds" => o.seeds = parse_num(&value("--seeds")?)?,
            "--seed-base" => o.seed_base = parse_num(&value("--seed-base")?)?,
            "--exhaustive" => o.exhaustive = parse_num(&value("--exhaustive")?)?,
            "--max-steps" => o.max_steps = parse_num(&value("--max-steps")?)? as usize,
            "--min-distinct" => o.min_distinct = Some(parse_num(&value("--min-distinct")?)?),
            "--lockorder" => o.lockorder = Some(value("--lockorder")?),
            "--report" => o.report = Some(value("--report")?),
            "--print-edges" => o.print_edges = true,
            "--replay-seed" => o.replay_seed = Some(parse_num(&value("--replay-seed")?)?),
            "--list" => o.list = true,
            "--help" | "-h" => {
                usage();
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.replace('_', "")
        .parse()
        .map_err(|_| format!("not a number: {s}"))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("obr-race: {e}");
            usage();
            return ExitCode::from(64);
        }
    };
    run(opts)
}

#[cfg(not(obr_model))]
fn run(_opts: Options) -> ExitCode {
    eprintln!(
        "obr-race: this is not a model build; the deterministic scheduler \
         is compiled out.\nRebuild with: RUSTFLAGS=\"--cfg obr_model\" \
         cargo run -p obr-race -- ..."
    );
    ExitCode::from(65)
}

#[cfg(obr_model)]
fn run(opts: Options) -> ExitCode {
    model::run(opts)
}

#[cfg(obr_model)]
mod model {
    use super::Options;
    use obr_race::explore::{self, ExploreStats, Repro};
    use obr_race::scenarios::{self, Scenario};
    use std::collections::BTreeSet;
    use std::fmt::Write as _;
    use std::process::ExitCode;

    pub fn run(opts: Options) -> ExitCode {
        if opts.list {
            for s in scenarios::all() {
                println!("{:<28} {}", s.name, s.about);
            }
            return ExitCode::SUCCESS;
        }
        let chosen: Vec<Scenario> = match &opts.scenario {
            Some(name) => match scenarios::by_name(name) {
                Some(s) => vec![s],
                None => {
                    eprintln!("obr-race: unknown scenario {name:?} (try --list)");
                    return ExitCode::from(64);
                }
            },
            None => scenarios::all(),
        };

        if let Some(seed) = opts.replay_seed {
            return replay_one(&opts, &chosen, seed);
        }

        let mut out = String::new();
        let mut total = ExploreStats::default();
        let _ = writeln!(
            out,
            "obr-race sweep: seeds {}..{} per scenario, exhaustive budget {}, max steps {}",
            opts.seed_base,
            opts.seed_base + opts.seeds,
            opts.exhaustive,
            opts.max_steps,
        );
        for s in &chosen {
            let mut stats = explore::run_random(*s, opts.seed_base, opts.seeds, opts.max_steps);
            if stats.failure.is_none() && opts.exhaustive > 0 {
                let ex = explore::run_exhaustive(*s, opts.exhaustive, opts.max_steps);
                stats.merge(&ex);
            }
            let _ = writeln!(
                out,
                "{:<28} runs={:<6} distinct={:<6} pruned={:<6} step-limited={} \
                 edges={} avg-steps={}",
                s.name,
                stats.runs,
                stats.distinct.len(),
                stats.pruned,
                stats.step_limited,
                stats.edges.len(),
                stats.total_steps.checked_div(stats.runs).unwrap_or(0),
            );
            total.merge(&stats);
        }
        let _ = writeln!(
            out,
            "total: {} runs, {} distinct schedules, {} pruned branches",
            total.runs,
            total.distinct.len(),
            total.pruned,
        );

        let mut code = ExitCode::SUCCESS;

        if let Some(f) = &total.failure {
            let _ = writeln!(out, "FAILURE in scenario {}: {:?}", f.scenario, f.result);
            match &f.repro {
                Repro::Seed(s) => {
                    let _ = writeln!(
                        out,
                        "reproduce: obr-race --scenario {} --replay-seed {s}",
                        f.scenario
                    );
                }
                Repro::Choices(c) => {
                    let _ = writeln!(
                        out,
                        "reproduce: PrefixChooser over choices {c:?} (schedule hash {:#018x})",
                        f.schedule_hash
                    );
                }
            }
            code = ExitCode::from(1);
        }

        if opts.print_edges {
            let _ = writeln!(out, "observed lock-order edges (held -> acquired):");
            for (a, b) in &total.edges {
                let _ = writeln!(out, "  {a} -> {b}");
            }
        }

        if let Some(path) = &opts.lockorder {
            let observed: BTreeSet<(String, String)> = total
                .edges
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect();
            let report = obr_check::check_lock_order_file(std::path::Path::new(path), &observed);
            let _ = writeln!(out, "lock-order diff vs {path}:");
            let _ = write!(out, "{report}");
            if !report.is_clean() && code == ExitCode::SUCCESS {
                code = ExitCode::from(3);
            }
        }

        if let Some(min) = opts.min_distinct {
            if (total.distinct.len() as u64) < min && total.failure.is_none() {
                let _ = writeln!(
                    out,
                    "COVERAGE SHORTFALL: {} distinct schedules < required {min}",
                    total.distinct.len()
                );
                if code == ExitCode::SUCCESS {
                    code = ExitCode::from(2);
                }
            }
        }

        print!("{out}");
        if let Some(path) = &opts.report {
            if let Err(e) = std::fs::write(path, &out) {
                eprintln!("obr-race: cannot write report {path}: {e}");
            }
        }
        code
    }

    fn replay_one(opts: &Options, chosen: &[Scenario], seed: u64) -> ExitCode {
        if chosen.len() != 1 {
            eprintln!("obr-race: --replay-seed needs --scenario");
            return ExitCode::from(64);
        }
        let s = chosen[0];
        let report = explore::replay(s, &Repro::Seed(seed), opts.max_steps);
        println!(
            "replay {} seed {seed}: {:?} in {} steps (schedule hash {:#018x})",
            s.name, report.result, report.steps, report.schedule_hash
        );
        for ev in &report.trace {
            println!("  {ev:?}");
        }
        if report.result.is_complete() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        }
    }
}
