//! The seven scripted concurrency scenarios the explorer replays.
//!
//! Each scenario is a plain `fn()` executed as thread 0 of a controlled
//! run (see `obr_sync::model::run_controlled`); it spawns its worker
//! threads through the `obr_sync::thread` facade so every lock, atomic,
//! and condvar operation becomes a scheduling decision. Scenario bodies
//! carry their own correctness assertions — a schedule that violates one
//! surfaces as `RunResult::Panic` with the failing seed attached by the
//! explorer.
//!
//! Determinism rules for scenario bodies: no wall-clock reads, no OS
//! randomness, explicit shard counts (`BufferPool::with_shards`), and any
//! file paths derived from a process-local counter.

use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::Arc;

use obr_core::{SideEntry, SideFile, SideOp};
use obr_lock::{LockError, LockManager, LockMode, OwnerId, ResourceId};
use obr_storage::{BufferPool, DiskManager, InMemoryDisk, PageId};
use obr_sync::thread;
use obr_wal::{LogManager, LogRecord, TxnId};

/// A named scenario body the explorer can run under any chooser.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Stable scenario name (used in CLI filters and reports).
    pub name: &'static str,
    /// One-line description for the coverage report.
    pub about: &'static str,
    /// The body executed as thread 0 of each controlled run.
    pub run: fn(),
}

/// All seven scenarios, in canonical order.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "wal_group_commit",
            about: "group-commit baton handoff with 3 committers on one log",
            run: wal_group_commit,
        },
        Scenario {
            name: "wal_watermark_file",
            about: "durable-watermark publication vs. invariant readers (file-backed)",
            run: wal_watermark_file,
        },
        Scenario {
            name: "wal_truncate_vs_tail",
            about: "checkpoint truncation + segment recycle racing tail readers",
            run: wal_truncate_vs_tail,
        },
        Scenario {
            name: "pool_eviction_vs_flush",
            about: "shard eviction under memory pressure racing flush_pages",
            run: pool_eviction_vs_flush,
        },
        Scenario {
            name: "pool_discard_vs_stale_flush",
            about: "flush racing discard-and-reallocate of the same page id",
            run: pool_discard_vs_stale_flush,
        },
        Scenario {
            name: "sidefile_append_vs_drain",
            about: "side-file append racing the pass-3 catch-up drain",
            run: sidefile_append_vs_drain,
        },
        Scenario {
            name: "lock_retry_vs_undo",
            about: "reorganizer deadlock-retry against a transaction's undo path",
            run: lock_retry_vs_undo,
        },
    ]
}

/// Looks a scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

fn rec(txn: u64, key: u64) -> LogRecord {
    LogRecord::TxnInsert {
        txn: TxnId(txn),
        page: PageId(1),
        key,
        value: vec![0xAB; 8],
        prev_lsn: obr_storage::Lsn::ZERO,
    }
}

/// Scenario 1: K committers append and force concurrently; exactly the
/// group-commit baton protocol of `LogManager::flush_to`. Asserts every
/// committer's target is durable when its flush returns and that the
/// final watermark covers everything appended.
fn wal_group_commit() {
    let log = Arc::new(LogManager::new());
    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            let log = Arc::clone(&log);
            thread::spawn(move || {
                let mut last = obr_storage::Lsn::ZERO;
                for i in 0..2u64 {
                    last = log.append(&rec(t, t * 10 + i));
                }
                log.flush_to(last).expect("flush_to");
                let durable = log.durable_lsn();
                assert!(
                    durable >= last,
                    "committer {t}: flush_to({last:?}) returned with durable={durable:?}"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        log.durable_lsn(),
        obr_storage::Lsn(6),
        "all 6 records durable"
    );
    assert!(log.durable_is_written());
}

static FILE_SCENARIO_RUNS: AtomicU64 = AtomicU64::new(0);

/// Scenario 2: a writer appends and flushes a file-backed log while a
/// reader repeatedly checks the torn-watermark invariant: every LSN at or
/// below the published durable watermark must already be on disk. The
/// clean build holds this in every interleaving; the sabotage build
/// (`OBR_BUG_EARLY_WATERMARK=1`, model cfg only) publishes the watermark
/// before the write and some schedule catches it — that is the explorer's
/// teeth test.
fn wal_watermark_file() {
    // relaxed: run-local file-name uniqueness counter; deliberately a raw
    // std atomic so it is invisible to the model scheduler (it must not
    // add scheduling decisions or vary between schedules).
    let n = FILE_SCENARIO_RUNS.fetch_add(1, StdOrdering::Relaxed);
    let path = std::env::temp_dir().join(format!("obr-race-wal-{}-{n}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let log = Arc::new(LogManager::open_file(&path).expect("open file-backed log"));
    let writer = {
        let log = Arc::clone(&log);
        thread::spawn(move || {
            let a = log.append(&rec(1, 1));
            log.flush_to(a).expect("flush_to");
            let b = log.append(&rec(1, 2));
            log.flush_to(b).expect("flush_to");
        })
    };
    let reader = {
        let log = Arc::clone(&log);
        thread::spawn(move || {
            for _ in 0..4 {
                assert!(
                    log.durable_is_written(),
                    "durable watermark published before the batch reached the file"
                );
                thread::yield_now();
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    assert!(log.durable_is_written());
    drop(log);
    let _ = std::fs::remove_file(&path);
}

static TRUNC_SCENARIO_RUNS: AtomicU64 = AtomicU64::new(0);

/// Scenario 3: checkpoint truncation racing tail readers on a segmented
/// file-backed log. A writer appends and forces records (sealing tiny
/// segments as it goes) while a truncator repeatedly advances the
/// low-water mark ([`LogManager::truncate_before`]) and recycles sealed
/// segment files, and a reader snapshots the tail with
/// [`LogManager::records_from`]. Asserts the race documented on
/// `truncate_before`: every reader snapshot is atomic (contiguous LSNs,
/// no half-truncated view), `first_lsn` only moves forward, and the
/// surviving segment catalog stays contiguous — a crash mid-recycle must
/// never be able to leave a gap.
fn wal_truncate_vs_tail() {
    // relaxed: run-local file-name uniqueness counter; deliberately a raw
    // std atomic so it is invisible to the model scheduler (it must not
    // add scheduling decisions or vary between schedules).
    let n = TRUNC_SCENARIO_RUNS.fetch_add(1, StdOrdering::Relaxed);
    let dir = std::env::temp_dir().join(format!("obr-race-waltrunc-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // 64-byte seal threshold: nearly every forced batch seals a segment,
    // so recycling has files to delete while the writer is mid-stream.
    let log = Arc::new(LogManager::open_dir(&dir, 64).expect("open segmented log"));
    let writer = {
        let log = Arc::clone(&log);
        thread::spawn(move || {
            for i in 0..5u64 {
                let lsn = log.append(&rec(1, i));
                log.flush_to(lsn).expect("flush_to");
            }
        })
    };
    let truncator = {
        let log = Arc::clone(&log);
        thread::spawn(move || {
            for _ in 0..2 {
                // A real checkpoint truncates at its low-water mark; any
                // durable LSN is a legal mark for the race's purposes.
                log.truncate_before(log.durable_lsn());
                log.recycle_segments().expect("recycle_segments");
                thread::yield_now();
            }
        })
    };
    let reader = {
        let log = Arc::clone(&log);
        thread::spawn(move || {
            let mut floor = obr_storage::Lsn::ZERO;
            for _ in 0..4 {
                let first = log.first_lsn();
                assert!(
                    first >= floor,
                    "first_lsn moved backwards: {first:?} after {floor:?}"
                );
                floor = first;
                let recs = log.records_from(obr_storage::Lsn(1)).expect("records_from");
                if let Some((lo, _)) = recs.first() {
                    assert!(
                        *lo >= floor,
                        "tail snapshot starts at {lo:?}, below first_lsn {floor:?}"
                    );
                    for (i, (lsn, _)) in recs.iter().enumerate() {
                        assert_eq!(
                            lsn.0,
                            lo.0 + i as u64,
                            "gap in a tail snapshot: truncation tore records_from"
                        );
                    }
                }
                thread::yield_now();
            }
        })
    };
    writer.join().unwrap();
    truncator.join().unwrap();
    reader.join().unwrap();

    // Quiesced: one more truncate+recycle, then the survivors must line up.
    log.truncate_before(log.durable_lsn());
    log.recycle_segments().expect("final recycle");
    assert_eq!(
        log.durable_lsn(),
        obr_storage::Lsn(5),
        "all 5 records durable"
    );
    let recs = log
        .records_from(obr_storage::Lsn(1))
        .expect("final records_from");
    assert_eq!(
        recs.first().map(|(l, _)| *l),
        Some(log.first_lsn()),
        "retained tail must start exactly at first_lsn"
    );
    assert_eq!(
        recs.last().map(|(l, _)| *l),
        Some(log.durable_lsn()),
        "retained tail must reach the durable watermark"
    );
    let cat = log.segment_catalog();
    assert_eq!(
        cat.first().map(|s| s.first_lsn),
        Some(log.first_lsn()),
        "oldest surviving segment must start at first_lsn (no over- or \
         under-recycle)"
    );
    for w in cat.windows(2) {
        assert_eq!(
            w[1].first_lsn.0,
            w[0].end_lsn.0 + 1,
            "segment catalog gap after concurrent recycle"
        );
    }
    drop(log);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scenario 4: a tiny pool (capacity 2, 2 shards) forces evictions while
/// a second thread flushes pages by id. Asserts residency never exceeds
/// capacity and that every written page's first byte reaches the disk
/// image after the final flush. A WAL is attached so every write-back
/// exercises the production WAL-before-data hook (and its lock nesting:
/// frame latch → wal hook → log internals).
///
/// This scenario caught a real lost-write window: `FrameGuard::write`
/// used to set the dirty bit *before* taking the data latch, so a
/// flusher could write the old image and clear the bit, after which the
/// guarded modification sat in a clean-marked frame that eviction
/// dropped without write-back.
fn pool_eviction_vs_flush() {
    let disk = Arc::new(InMemoryDisk::new(8));
    let pool = Arc::new(BufferPool::with_shards(disk.clone(), 2, 2));
    let log = Arc::new(LogManager::new());
    pool.set_wal(Arc::clone(&log) as Arc<dyn obr_storage::WalFlush>);
    let writer = {
        let pool = Arc::clone(&pool);
        let log = Arc::clone(&log);
        thread::spawn(move || {
            for p in 0..4u32 {
                let lsn = log.append(&rec(9, u64::from(p)));
                let g = pool.fetch_new(PageId(p)).expect("fetch_new");
                {
                    let mut pg = g.write();
                    pg.body_mut()[0] = 0x40 + p as u8;
                    // A real LSN makes every write-back enforce the
                    // WAL-before-data rule through the hook.
                    pg.set_lsn(lsn);
                }
                drop(g);
                assert!(
                    pool.resident() <= 2,
                    "resident {} > capacity",
                    pool.resident()
                );
            }
        })
    };
    let flusher = {
        let pool = Arc::clone(&pool);
        thread::spawn(move || {
            for _ in 0..2 {
                pool.flush_pages(&[PageId(0), PageId(1), PageId(2), PageId(3)])
                    .expect("flush_pages");
            }
        })
    };
    writer.join().unwrap();
    flusher.join().unwrap();
    pool.flush_all().expect("flush_all");
    for p in 0..4u32 {
        let img = disk.read_page(PageId(p)).expect("read back");
        assert_eq!(
            img.body()[0],
            0x40 + p as u8,
            "page {p} lost its write across eviction/flush"
        );
    }
}

/// Scenario 5: a flusher races a discard-and-reallocate of the same page
/// id (the reorganizer's deallocate-then-reuse shape, ROADMAP item 5).
/// The flusher clones the frame's `Arc` out of the shard table; if the
/// discard and the reallocation complete while the flusher is suspended
/// before its disk write, the stale write lands *after* the new image
/// and clobbers it. The fix is the frame dead bit + retire barrier in
/// `BufferPool::discard`/`write_frame`; the model-only sabotage switch
/// `OBR_BUG_STALE_FRAME_FLUSH=1` disables the dead check so the teeth
/// test can prove this scenario still catches the original bug.
fn pool_discard_vs_stale_flush() {
    let disk = Arc::new(InMemoryDisk::new(8));
    let pool = Arc::new(BufferPool::with_shards(disk.clone(), 4, 2));
    // The doomed image of page 1.
    {
        let g = pool.fetch_new(PageId(1)).expect("fetch_new");
        g.write().body_mut()[0] = 0x0D;
    }
    let flusher = {
        let pool = Arc::clone(&pool);
        thread::spawn(move || {
            pool.flush_page(PageId(1)).expect("stale flush");
        })
    };
    let realloc = {
        let disk = Arc::clone(&disk);
        let pool = Arc::clone(&pool);
        thread::spawn(move || {
            // Deallocate the page. Once discard returns, the pool has no
            // claim on the id: the next owner's fresh image goes straight
            // to disk (the minimal model of reallocate-and-make-durable —
            // few scheduling decisions, so random sweeps actually reach
            // the stale-write window when the fix is sabotaged away).
            pool.discard(PageId(1));
            let mut img = obr_storage::Page::new();
            img.body_mut()[0] = 0x11;
            disk.write_page(PageId(1), &img).expect("new owner's image");
        })
    };
    flusher.join().unwrap();
    realloc.join().unwrap();
    let img = disk.read_page(PageId(1)).expect("read back");
    assert_eq!(
        img.body()[0],
        0x11,
        "stale flush of a discarded frame clobbered the reallocated page"
    );
}

/// Scenario 6: one thread appends side-file entries (reorganizer pass 2)
/// while another drains them front-to-back (pass-3 catch-up). Asserts
/// the drain sees every appended entry exactly once, in order.
fn sidefile_append_vs_drain() {
    let log = Arc::new(LogManager::new());
    let side = Arc::new(SideFile::new(Arc::clone(&log)));
    let done = Arc::new(obr_sync::atomic::AtomicBool::new(false));
    let appender = {
        let side = Arc::clone(&side);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            for k in 0..4u64 {
                side.append(
                    TxnId(7),
                    SideEntry {
                        key: k,
                        op: SideOp::Upsert(PageId(2)),
                    },
                );
            }
            done.store(true, obr_sync::atomic::Ordering::Release);
        })
    };
    let drainer = {
        let side = Arc::clone(&side);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut drained = Vec::new();
            loop {
                if let Some((seq, entry)) = side.pop_front(TxnId(8)) {
                    drained.push((seq, entry.key));
                } else if done.load(obr_sync::atomic::Ordering::Acquire) && side.is_empty() {
                    break;
                } else {
                    thread::yield_now();
                }
            }
            drained
        })
    };
    appender.join().unwrap();
    let drained = drainer.join().unwrap();
    assert_eq!(drained.len(), 4, "drain must see every appended entry");
    let keys: Vec<u64> = drained.iter().map(|(_, k)| *k).collect();
    assert_eq!(
        keys,
        vec![0, 1, 2, 3],
        "catch-up must apply in append order"
    );
    assert!(side.is_empty());
    // 4 inserts + 4 deletes hit the log.
    assert_eq!(log.len(), 8, "every append and drain is logged");
}

/// Scenario 7: the reorganizer daemon's deadlock-retry protocol against a
/// transaction acquiring the same two pages in the opposite order (the
/// undo path's reverse traversal). The reorganizer is the registered —
/// and therefore preferred — deadlock victim: it must be the one that
/// backs off, and both sides must finish with the lock table empty.
fn lock_retry_vs_undo() {
    let m = Arc::new(LockManager::new());
    let reorg = OwnerId(100);
    let txn = OwnerId(1);
    m.register_reorganizer(reorg);
    let reorg_h = {
        let m = Arc::clone(&m);
        thread::spawn(move || {
            let mut retries = 0u32;
            loop {
                match m
                    .lock(reorg, ResourceId::Page(1), LockMode::RX)
                    .and_then(|()| m.lock(reorg, ResourceId::Page(2), LockMode::RX))
                {
                    Ok(()) => break,
                    Err(
                        LockError::Deadlock
                        | LockError::Timeout
                        | LockError::WouldBlock
                        | LockError::ConflictsWithReorg,
                    ) => {
                        // Daemon protocol: drop everything and retry.
                        m.release_all(reorg);
                        retries += 1;
                        assert!(retries < 32, "reorganizer retried forever");
                        thread::yield_now();
                    }
                    Err(e) => panic!("unexpected lock error: {e:?}"),
                }
            }
            m.release_all(reorg);
            retries
        })
    };
    let txn_h = {
        let m = Arc::clone(&m);
        thread::spawn(move || {
            let mut retries = 0u32;
            loop {
                match m
                    .lock(txn, ResourceId::Page(2), LockMode::X)
                    .and_then(|()| m.lock(txn, ResourceId::Page(1), LockMode::X))
                {
                    Ok(()) => break,
                    Err(
                        LockError::Deadlock
                        | LockError::Timeout
                        | LockError::WouldBlock
                        | LockError::ConflictsWithReorg,
                    ) => {
                        m.release_all(txn);
                        retries += 1;
                        assert!(retries < 32, "transaction retried forever");
                        thread::yield_now();
                    }
                    Err(e) => panic!("unexpected lock error: {e:?}"),
                }
            }
            // Undo complete: roll back releases in reverse order.
            m.unlock(txn, ResourceId::Page(1));
            m.unlock(txn, ResourceId::Page(2));
            retries
        })
    };
    reorg_h.join().unwrap();
    txn_h.join().unwrap();
    assert!(m.held_resources(reorg).is_empty());
    assert!(m.held_resources(txn).is_empty());
    assert!(
        m.validate_invariants().is_empty(),
        "lock table invariants violated after retry storm"
    );
}
