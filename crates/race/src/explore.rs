//! Schedule explorers: seeded-random sweeps and bounded exhaustive
//! enumeration with DPOR-lite pruning.
//!
//! Both explorers drive [`obr_sync::model::run_controlled`] over a
//! scenario body and fold every run into an [`ExploreStats`]:
//! distinct-schedule coverage (FNV-1a hashes of the chosen thread
//! sequence), the union of observed lock-order edges, and the first
//! failing run (with enough detail to replay it).
//!
//! The exhaustive explorer walks the schedule tree depth-first. At each
//! decision point it considers every enabled candidate, but prunes an
//! alternative `j` when the candidate actually chosen at that step was
//! *independent* of `j` and the step's span touched no shared state
//! (`span_dirty == false`): swapping two adjacent independent steps
//! yields an equivalent execution, so only one order needs exploring.
//! This is the classic persistent-set intuition, applied per-step — a
//! sound-for-assertions, deliberately simple cut of dynamic partial
//! order reduction.

use std::collections::BTreeSet;

use obr_sync::model::{
    run_controlled, CandKind, Candidate, PrefixChooser, RandomChooser, RunReport, RunResult,
};

use crate::scenarios::Scenario;

/// Default per-run step budget. Generous: the longest scenario
/// (buffer-pool eviction) takes a few hundred steps.
pub const DEFAULT_MAX_STEPS: usize = 20_000;

/// How one failing run can be reproduced.
#[derive(Debug, Clone)]
pub enum Repro {
    /// Re-run the scenario with `RandomChooser::new(seed)`.
    Seed(u64),
    /// Re-run the scenario with `PrefixChooser::new(choices)`.
    Choices(Vec<usize>),
}

/// A failed run, with everything needed to replay and diagnose it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Scenario that failed.
    pub scenario: &'static str,
    /// What went wrong.
    pub result: RunResult,
    /// How to reproduce the exact schedule.
    pub repro: Repro,
    /// The schedule hash of the failing interleaving.
    pub schedule_hash: u64,
    /// The chosen thread sequence (for trace dumps).
    pub schedule: Vec<usize>,
}

/// Accumulated coverage and outcome statistics for one scenario.
#[derive(Debug, Default)]
pub struct ExploreStats {
    /// Total schedules executed.
    pub runs: u64,
    /// Distinct schedule hashes observed.
    pub distinct: BTreeSet<u64>,
    /// Branches skipped by the DPOR-lite independence rule
    /// (exhaustive mode only).
    pub pruned: u64,
    /// Runs that hit the step budget (counted, not failed).
    pub step_limited: u64,
    /// Union of lock-order edges `(held class, acquired class)` over
    /// every run.
    pub edges: BTreeSet<(&'static str, &'static str)>,
    /// First failure encountered, if any.
    pub failure: Option<Failure>,
    /// Total scheduling decisions across all runs.
    pub total_steps: u64,
    /// Maximum steps seen in a single run.
    pub max_steps_seen: u64,
}

impl ExploreStats {
    fn absorb(
        &mut self,
        scenario: &'static str,
        report: &RunReport,
        repro: impl FnOnce() -> Repro,
    ) {
        self.runs += 1;
        self.distinct.insert(report.schedule_hash);
        self.total_steps += report.steps as u64;
        self.max_steps_seen = self.max_steps_seen.max(report.steps as u64);
        for e in &report.edges {
            self.edges.insert(*e);
        }
        match &report.result {
            RunResult::Complete => {}
            RunResult::StepLimit => self.step_limited += 1,
            other => {
                if self.failure.is_none() {
                    self.failure = Some(Failure {
                        scenario,
                        result: other.clone(),
                        repro: repro(),
                        schedule_hash: report.schedule_hash,
                        schedule: report.schedule.clone(),
                    });
                }
            }
        }
    }

    /// Merge another scenario's stats into a whole-sweep aggregate.
    pub fn merge(&mut self, other: &ExploreStats) {
        self.runs += other.runs;
        self.distinct.extend(other.distinct.iter().copied());
        self.pruned += other.pruned;
        self.step_limited += other.step_limited;
        self.edges.extend(other.edges.iter().copied());
        self.total_steps += other.total_steps;
        self.max_steps_seen = self.max_steps_seen.max(other.max_steps_seen);
        if self.failure.is_none() {
            self.failure.clone_from(&other.failure);
        }
    }
}

/// Run `count` seeded-random schedules of `scenario`, seeds
/// `seed_base..seed_base + count`. Deterministic: the same seed always
/// produces the same schedule. Stops early on the first failure.
pub fn run_random(
    scenario: Scenario,
    seed_base: u64,
    count: u64,
    max_steps: usize,
) -> ExploreStats {
    let mut stats = ExploreStats::default();
    for seed in seed_base..seed_base.saturating_add(count) {
        let report = run_controlled(Box::new(RandomChooser::new(seed)), max_steps, scenario.run);
        stats.absorb(scenario.name, &report, || Repro::Seed(seed));
        if stats.failure.is_some() {
            break;
        }
    }
    stats
}

/// Replay one exact schedule of `scenario` from a recorded repro.
pub fn replay(scenario: Scenario, repro: &Repro, max_steps: usize) -> RunReport {
    match repro {
        Repro::Seed(s) => run_controlled(Box::new(RandomChooser::new(*s)), max_steps, scenario.run),
        Repro::Choices(c) => run_controlled(
            Box::new(PrefixChooser::new(c.clone())),
            max_steps,
            scenario.run,
        ),
    }
}

/// Is swapping these two adjacent steps guaranteed to produce an
/// equivalent execution? Conservative: only obviously-commuting pairs
/// are independent.
fn independent(a: &Candidate, b: &Candidate) -> bool {
    match (&a.kind, &b.kind) {
        // A pure step (local computation up to its next yield) commutes
        // with anything only if its span touched no shared state; the
        // caller checks span_dirty separately, so treat Pure as
        // non-independent unless the span was clean — handled below.
        (CandKind::Pure, _) | (_, CandKind::Pure) => true,
        (
            CandKind::Sync {
                obj: oa, write: wa, ..
            },
            CandKind::Sync {
                obj: ob, write: wb, ..
            },
        ) => oa != ob || (!wa && !wb),
        // Joins synchronize with the joined thread's entire history.
        (CandKind::Join, _) | (_, CandKind::Join) => false,
    }
}

/// Bounded exhaustive (DFS) exploration with DPOR-lite pruning.
///
/// Walks the schedule tree depth-first using prefix replay. The
/// frontier holds prefixes still to explore; each executed run
/// contributes new branch points for every step where an enabled
/// alternative was not pruned. Exploration stops when the tree is
/// exhausted, `max_runs` schedules have executed, or a failure is
/// found.
pub fn run_exhaustive(scenario: Scenario, max_runs: u64, max_steps: usize) -> ExploreStats {
    let mut stats = ExploreStats::default();
    // Each frontier entry is a decision prefix (candidate indices).
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(prefix) = frontier.pop() {
        if stats.runs >= max_runs {
            break;
        }
        let prefix_len = prefix.len();
        let report = run_controlled(
            Box::new(PrefixChooser::new(prefix.clone())),
            max_steps,
            scenario.run,
        );
        // The choices actually taken (prefix + first-enabled tail).
        let taken = report.choices.clone();
        stats.absorb(scenario.name, &report, || Repro::Choices(taken.clone()));
        if stats.failure.is_some() {
            break;
        }
        // Open new branches at every step past the prefix: DFS order —
        // push shallower branch points first so deeper ones pop first.
        for (step, rec) in report.records.iter().enumerate().skip(prefix_len) {
            if rec.candidates.len() < 2 {
                continue;
            }
            let chosen = &rec.candidates[rec.chosen];
            for (j, alt) in rec.candidates.iter().enumerate() {
                if j == rec.chosen {
                    continue;
                }
                // DPOR-lite: if the chosen step commutes with this
                // alternative and its span touched no shared state,
                // the swapped order is equivalent — skip it.
                if !rec.span_dirty && independent(alt, chosen) {
                    stats.pruned += 1;
                    continue;
                }
                let mut branch = taken[..step].to_vec();
                branch.push(j);
                frontier.push(branch);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn random_sweep_is_deterministic() {
        let s = scenarios::by_name("sidefile_append_vs_drain").unwrap();
        let a = run_random(s, 1, 8, DEFAULT_MAX_STEPS);
        let b = run_random(s, 1, 8, DEFAULT_MAX_STEPS);
        assert!(a.failure.is_none(), "{:?}", a.failure);
        assert_eq!(a.distinct, b.distinct);
        assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn exhaustive_prunes_but_still_covers() {
        let s = scenarios::by_name("wal_group_commit").unwrap();
        let stats = run_exhaustive(s, 200, DEFAULT_MAX_STEPS);
        assert!(stats.failure.is_none(), "{:?}", stats.failure);
        assert!(stats.runs > 1, "tree has more than one schedule");
        assert!(stats.pruned > 0, "independence rule never fired");
        assert!(stats.distinct.len() > 1);
    }

    #[test]
    fn replay_reproduces_schedule_hash() {
        let s = scenarios::by_name("lock_retry_vs_undo").unwrap();
        let first = run_controlled(Box::new(RandomChooser::new(42)), DEFAULT_MAX_STEPS, s.run);
        assert!(first.result.is_complete(), "{:?}", first.result);
        let again = replay(s, &Repro::Seed(42), DEFAULT_MAX_STEPS);
        assert_eq!(first.schedule_hash, again.schedule_hash);
        let by_choices = replay(s, &Repro::Choices(first.choices.clone()), DEFAULT_MAX_STEPS);
        assert_eq!(first.schedule_hash, by_choices.schedule_hash);
    }
}
