//! Deterministic interleaving explorer for the engine's concurrent hot
//! paths.
//!
//! This crate only does real work in a **model build** — compiled with
//! `RUSTFLAGS="--cfg obr_model"` — where every `obr-sync` facade
//! primitive routes through the controllable scheduler in
//! `obr_sync::model`. It then replays seeded random interleavings and
//! bounded exhaustive permutations (with DPOR-lite pruning) over seven
//! scripted scenarios covering the engine's concurrent hot paths, checks
//! scenario assertions under every schedule, and accumulates the
//! observed lock-acquisition-order graph for comparison against
//! `check/lockorder.toml`.
//!
//! In a normal build the scheduler does not exist; the `obr-race` binary
//! still compiles but exits with an explanatory error. This keeps the
//! model machinery one `cfg` away from production code at all times.
//!
//! Entry points (plain code spans, not links: the modules only exist
//! under the model cfg and would break `cargo doc` otherwise):
//! - `scenarios::all` — the seven scripted scenarios (model builds).
//! - `explore::run_random` / `explore::run_exhaustive` — the two
//!   explorers (model builds).
//! - `obr-race` binary — CLI over both, plus the lock-order diff.

#[cfg(obr_model)]
pub mod explore;
#[cfg(obr_model)]
pub mod scenarios;

/// True when this build carries the model scheduler (`--cfg obr_model`).
pub const fn model_enabled() -> bool {
    obr_sync::is_model_build()
}
