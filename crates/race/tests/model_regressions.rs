//! Model-scheduler regression tests for previously-fixed concurrency
//! bugs: each test replays the interleaving family that used to break,
//! across a deterministic seeded sweep.

#![cfg(obr_model)]

use std::sync::Arc;

use obr_race::explore::{run_random, DEFAULT_MAX_STEPS};
use obr_race::scenarios::{self, Scenario};
use obr_storage::{BufferPool, DiskManager, InMemoryDisk, PageId};
use obr_sync::thread;

/// The `flush_all` snapshot TOCTOU (fixed in the shard-the-pool PR):
/// the old implementation took one global resident-set snapshot and
/// re-locked per page, so pages faulted in *while the sweep ran* could
/// race ahead of it and be skipped silently, leaving dirty pages
/// unflushed after `flush_all` returned. The fixed sweep snapshots and
/// flushes shard-by-shard (atomic per shard).
///
/// The schedule family: one thread faults in and dirties pages across
/// both shards while another runs `flush_all` twice back-to-back. The
/// invariant checked on every interleaving: after both threads join,
/// every page the *second* `flush_all` could see resident is clean on
/// disk — i.e. a final fault-free read-back of all pages matches what
/// was written, with no page lost between snapshot and flush.
fn flush_all_snapshot_toctou() {
    let disk = Arc::new(InMemoryDisk::new(8));
    let pool = Arc::new(BufferPool::with_shards(disk.clone(), 4, 2));
    let writer = {
        let pool = Arc::clone(&pool);
        thread::spawn(move || {
            for p in 0..4u32 {
                let g = pool.fetch_new(PageId(p)).expect("fetch_new");
                g.write().body_mut()[0] = 0x60 + p as u8;
            }
        })
    };
    let flusher = {
        let pool = Arc::clone(&pool);
        thread::spawn(move || {
            pool.flush_all().expect("first flush_all");
            pool.flush_all().expect("second flush_all");
        })
    };
    writer.join().unwrap();
    flusher.join().unwrap();
    // The writer may have dirtied pages after the flusher's last sweep;
    // those are this call's responsibility (that rule is documented on
    // flush_all). What must NEVER happen is a page both threads agree
    // was flushed coming back stale.
    pool.flush_all().expect("final flush_all");
    for p in 0..4u32 {
        let img = disk.read_page(PageId(p)).expect("read back");
        assert_eq!(
            img.body()[0],
            0x60 + p as u8,
            "page {p} lost between flush_all snapshot and write-back"
        );
    }
}

#[test]
fn flush_all_snapshot_toctou_regression_sweep() {
    let scenario = Scenario {
        name: "flush_all_snapshot_toctou",
        about: "regression: pages faulted in during flush_all must not be lost",
        run: flush_all_snapshot_toctou,
    };
    let stats = run_random(scenario, 1, 300, DEFAULT_MAX_STEPS);
    assert!(stats.failure.is_none(), "{:?}", stats.failure);
    assert!(
        stats.distinct.len() > 250,
        "sweep collapsed to {} distinct schedules",
        stats.distinct.len()
    );
}

/// The lost-write window this PR's explorer found in `FrameGuard::write`
/// (dirty bit set before the data latch was held): the five-scenario
/// sweep must stay clean now that the store happens under the latch.
/// Kept as a fast standing regression over the exact scenario that
/// caught it.
#[test]
fn frame_guard_dirty_bit_regression_sweep() {
    let scenario = scenarios::by_name("pool_eviction_vs_flush").unwrap();
    let stats = run_random(scenario, 1, 300, DEFAULT_MAX_STEPS);
    assert!(stats.failure.is_none(), "{:?}", stats.failure);
}
