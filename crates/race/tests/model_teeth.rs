//! Sabotage-teeth test: proves the explorer can actually catch an
//! ordering bug, not just run green forever.
//!
//! `OBR_BUG_EARLY_WATERMARK=1` (model builds only) makes the WAL's
//! elected flusher publish the durable watermark *before* writing and
//! fsyncing the batch — the canonical torn-watermark ordering bug. The
//! `wal_watermark_file` scenario's reader asserts the watermark
//! invariant on every schedule, so a modest seeded sweep must find a
//! failing interleaving with the sabotage on, and must stay clean with
//! it off. If the sabotaged sweep ever comes back green, the explorer
//! has lost its teeth and CI must fail.

#![cfg(obr_model)]

use obr_race::explore::{run_random, DEFAULT_MAX_STEPS};
use obr_race::scenarios;

const SWEEP: u64 = 400;

/// The teeth tests mutate process-global environment flags; they must
/// never run concurrently with each other (set_var racing var_os is a
/// data race on environ).
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn early_watermark_sabotage_is_caught_and_clean_build_passes() {
    let _env = ENV_LOCK.lock().unwrap();
    let scenario = scenarios::by_name("wal_watermark_file").unwrap();

    // Phase 1: sabotage on — some schedule must observe the torn
    // watermark. Phases must stay sequential in this order so the clean
    // phase also proves the flag reset took effect.
    std::env::set_var("OBR_BUG_EARLY_WATERMARK", "1");
    let sabotaged = run_random(scenario, 1, SWEEP, DEFAULT_MAX_STEPS);
    std::env::remove_var("OBR_BUG_EARLY_WATERMARK");
    let failure = sabotaged
        .failure
        .expect("sabotaged build ran a full sweep without catching the early watermark");
    let msg = format!("{:?}", failure.result);
    assert!(
        msg.contains("watermark"),
        "failure must be the watermark assertion, got: {msg}"
    );

    // Determinism: replaying the failing repro reproduces the failure.
    let replay = obr_race::explore::replay(scenario, &failure.repro, DEFAULT_MAX_STEPS);
    // (The sabotage env var is off now, so the replayed schedule differs
    // in outcome — it must now PASS, proving the bug, not the harness,
    // caused the failure.)
    assert!(
        replay.result.is_complete(),
        "with sabotage off the same schedule must pass, got {:?}",
        replay.result
    );

    // Phase 2: clean build — the whole sweep must pass.
    let clean = run_random(scenario, 1, SWEEP, DEFAULT_MAX_STEPS);
    assert!(
        clean.failure.is_none(),
        "clean build failed: {:?}",
        clean.failure
    );
}

#[test]
fn stale_frame_flush_sabotage_is_caught_and_clean_build_passes() {
    let _env = ENV_LOCK.lock().unwrap();
    let scenario = scenarios::by_name("pool_discard_vs_stale_flush").unwrap();

    // Phase 1: sabotage on — `write_frame` skips the dead-frame check,
    // so some schedule must let the suspended flusher clobber the
    // reallocated page's image with the discarded one.
    std::env::set_var("OBR_BUG_STALE_FRAME_FLUSH", "1");
    let sabotaged = run_random(scenario, 1, SWEEP, DEFAULT_MAX_STEPS);
    std::env::remove_var("OBR_BUG_STALE_FRAME_FLUSH");
    let failure = sabotaged
        .failure
        .expect("sabotaged build ran a full sweep without catching the stale flush");
    let msg = format!("{:?}", failure.result);
    assert!(
        msg.contains("stale flush"),
        "failure must be the clobbered-page assertion, got: {msg}"
    );

    // With the dead-frame check back on, the same schedule must pass.
    let replay = obr_race::explore::replay(scenario, &failure.repro, DEFAULT_MAX_STEPS);
    assert!(
        replay.result.is_complete(),
        "with sabotage off the same schedule must pass, got {:?}",
        replay.result
    );

    // Phase 2: clean build — the whole sweep must pass.
    let clean = run_random(scenario, 1, SWEEP, DEFAULT_MAX_STEPS);
    assert!(
        clean.failure.is_none(),
        "clean build failed: {:?}",
        clean.failure
    );
}
