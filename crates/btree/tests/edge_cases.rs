//! Edge-case tests for the tree: giant records (single-record leaves and
//! the left-sibling split plan), side-pointer modes, and update paths.

use std::sync::Arc;

use obr_btree::leaf::MAX_VALUE;
use obr_btree::{BTree, BTreeError, SidePointerMode};
use obr_storage::{BufferPool, DiskManager, FreeSpaceMap, InMemoryDisk, Lsn};
use obr_wal::{LogManager, TxnId};

fn tree(pages: u32, side: SidePointerMode) -> BTree {
    let disk = Arc::new(InMemoryDisk::new(pages));
    let pool = Arc::new(BufferPool::new(
        disk as Arc<dyn DiskManager>,
        pages as usize,
    ));
    let fsm = Arc::new(FreeSpaceMap::new_all_free(pages));
    let log = Arc::new(LogManager::new());
    BTree::create(pool, fsm, log, side).unwrap()
}

#[test]
fn giant_records_one_per_leaf() {
    let t = tree(256, SidePointerMode::TwoWay);
    let big = vec![0xEE; MAX_VALUE];
    // Ascending giant inserts: every leaf holds exactly one record, every
    // split takes the "new empty sibling on the right" plan.
    for k in 0..20u64 {
        t.insert(TxnId(1), Lsn::ZERO, k, &big).unwrap();
    }
    assert_eq!(t.validate().unwrap(), 20);
    let s = t.stats().unwrap();
    assert_eq!(s.leaf_pages, 20);
    for k in 0..20u64 {
        assert_eq!(t.search(k).unwrap().unwrap().len(), MAX_VALUE);
    }
}

#[test]
fn giant_records_descending_exercise_left_split_plan() {
    let t = tree(256, SidePointerMode::TwoWay);
    let big = vec![0xDD; MAX_VALUE];
    // Descending giant inserts force the single-record leaf to split with
    // the incoming key *below* the resident record (Plan::Left).
    for k in (0..20u64).rev() {
        t.insert(TxnId(1), Lsn::ZERO, k, &big).unwrap();
    }
    assert_eq!(t.validate().unwrap(), 20);
    for k in 0..20u64 {
        assert!(t.search(k).unwrap().is_some(), "key {k} lost");
    }
    // Range scans over the chain agree.
    let scan = t.range_scan(0, 19).unwrap();
    assert_eq!(scan.len(), 20);
}

#[test]
fn giant_records_random_order() {
    let t = tree(512, SidePointerMode::TwoWay);
    let big = vec![0xCC; MAX_VALUE - 7];
    let mut keys: Vec<u64> = (0..40).map(|i| (i * 2654435761u64) % 1000).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut shuffled = keys.clone();
    // Deterministic shuffle.
    let mut rng = 0x5EED_u64;
    for i in (1..shuffled.len()).rev() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        shuffled.swap(i, (rng as usize) % (i + 1));
    }
    for &k in &shuffled {
        t.insert(TxnId(1), Lsn::ZERO, k, &big).unwrap();
    }
    assert_eq!(t.validate().unwrap() as usize, keys.len());
    let got: Vec<u64> = t.collect_all().unwrap().iter().map(|(k, _)| *k).collect();
    assert_eq!(got, keys);
}

#[test]
fn oversized_record_is_rejected_cleanly() {
    let t = tree(64, SidePointerMode::TwoWay);
    let too_big = vec![0; MAX_VALUE + 1];
    assert!(matches!(
        t.insert(TxnId(1), Lsn::ZERO, 1, &too_big),
        Err(BTreeError::RecordTooLarge(_))
    ));
    // The tree is untouched.
    assert_eq!(t.validate().unwrap(), 0);
}

#[test]
fn one_way_side_pointers_maintained_through_splits_and_frees() {
    let t = tree(512, SidePointerMode::OneWay);
    for k in 0..800u64 {
        t.insert(TxnId(1), Lsn::ZERO, k, &[1u8; 64]).unwrap();
    }
    t.validate().unwrap();
    // Delete a whole middle range so free-at-empty unlinks leaves.
    for k in 200..400u64 {
        t.delete(TxnId(1), Lsn::ZERO, k).unwrap();
    }
    t.validate().unwrap();
    let scan = t.range_scan(100, 500).unwrap();
    assert_eq!(scan.len(), 100 + 101); // 100..200 and 400..=500
}

#[test]
fn no_side_pointers_mode_still_scans_correctly() {
    let t = tree(512, SidePointerMode::None);
    for k in 0..800u64 {
        t.insert(TxnId(1), Lsn::ZERO, k * 3, &[2u8; 64]).unwrap();
    }
    for k in 0..800u64 {
        if k % 2 == 0 {
            t.delete(TxnId(1), Lsn::ZERO, k * 3).unwrap();
        }
    }
    t.validate().unwrap();
    let scan = t.range_scan(0, 2400).unwrap();
    assert_eq!(
        scan.len(),
        (0..800).filter(|k| k % 2 == 1 && k * 3 <= 2400).count()
    );
}

#[test]
fn interleaved_insert_delete_churn_stays_valid() {
    let t = tree(1024, SidePointerMode::TwoWay);
    let mut live = std::collections::BTreeSet::new();
    let mut rng = 0xABCD_u64;
    for round in 0..3000u64 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let k = rng % 700;
        if live.contains(&k) {
            t.delete(TxnId(1), Lsn::ZERO, k).unwrap();
            live.remove(&k);
        } else {
            t.insert(TxnId(1), Lsn::ZERO, k, &k.to_le_bytes()).unwrap();
            live.insert(k);
        }
        if round % 500 == 0 {
            assert_eq!(t.validate().unwrap() as usize, live.len());
        }
    }
    let got: Vec<u64> = t.collect_all().unwrap().iter().map(|(k, _)| *k).collect();
    let want: Vec<u64> = live.iter().copied().collect();
    assert_eq!(got, want);
}

#[test]
fn bulk_load_then_point_updates_round_trip() {
    let t = tree(1024, SidePointerMode::TwoWay);
    let records: Vec<(u64, Vec<u8>)> = (0..2000u64).map(|k| (k, vec![0u8; 32])).collect();
    t.bulk_load(&records, 0.8, 0.8).unwrap();
    // Delete + reinsert with a different value ("update").
    for k in (0..2000u64).step_by(13) {
        t.delete(TxnId(2), Lsn::ZERO, k).unwrap();
        t.insert(TxnId(2), Lsn::ZERO, k, &[9u8; 48]).unwrap();
    }
    t.validate().unwrap();
    assert_eq!(t.search(13).unwrap().unwrap(), vec![9u8; 48]);
    assert_eq!(t.search(14).unwrap().unwrap(), vec![0u8; 32]);
}

#[test]
fn delete_to_empty_then_refill() {
    let t = tree(256, SidePointerMode::TwoWay);
    for k in 0..500u64 {
        t.insert(TxnId(1), Lsn::ZERO, k, &[3u8; 64]).unwrap();
    }
    for k in 0..500u64 {
        t.delete(TxnId(1), Lsn::ZERO, k).unwrap();
    }
    assert_eq!(t.validate().unwrap(), 0);
    // The tree is reusable after being emptied.
    for k in 1000..1500u64 {
        t.insert(TxnId(1), Lsn::ZERO, k, &[4u8; 64]).unwrap();
    }
    assert_eq!(t.validate().unwrap(), 500);
    assert_eq!(t.search(1250).unwrap().unwrap(), vec![4u8; 64]);
}

#[test]
fn small_buffer_pool_forces_eviction_mid_operation() {
    // A pool with far fewer frames than pages: every operation churns the
    // cache; correctness must not depend on residency.
    let disk = Arc::new(InMemoryDisk::new(2048));
    let pool = Arc::new(BufferPool::new(disk as Arc<dyn DiskManager>, 24));
    let fsm = Arc::new(FreeSpaceMap::new_all_free(2048));
    let log = Arc::new(LogManager::new());
    let t = BTree::create(pool, fsm, log, SidePointerMode::TwoWay).unwrap();
    for k in 0..1500u64 {
        t.insert(TxnId(1), Lsn::ZERO, k, &[5u8; 64]).unwrap();
    }
    assert_eq!(t.validate().unwrap(), 1500);
    for k in (0..1500u64).step_by(3) {
        t.delete(TxnId(1), Lsn::ZERO, k).unwrap();
    }
    assert_eq!(t.validate().unwrap(), 1000);
}
