//! Bottom-up tree construction (\[Sal88\] ch. 5 §5), as used by bulk loading
//! and by pass 3 of the reorganization.
//!
//! "Essentially, the records are copied to newly allocated empty pages as
//! they arrive. When a new page is added, no splitting is necessary. The
//! first page is filled to a pre-assigned fill factor, and then the next
//! records go in the next page. Each new page requires a new entry in the
//! level above. At all levels, when a page is filled to the fill factor, a
//! new empty page is allocated and the next record or pointer to a record is
//! entered there."
//!
//! [`UpperBuilder`] is the *incremental* form pass 3 needs: entries stream
//! in one base page at a time while the reorganizer holds only one S lock,
//! and the set of pages dirtied since the last stable point can be drained
//! for the §7.3 force-writes.

use std::collections::BTreeSet;
use std::sync::Arc;

use obr_storage::{BufferPool, FreeSpaceMap, PageId, StorageError};

use crate::error::{BTreeError, BTreeResult};
use crate::leaf::{LeafView, LEAF_BODY};
use crate::node::{NodeView, NODE_CAPACITY};
use crate::tree::SidePointerMode;

/// Result of a bottom-up build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltTree {
    /// Root of the new (sub)tree.
    pub root: PageId,
    /// Height of the new tree (0 = root is a leaf).
    pub height: u8,
}

struct LevelState {
    page: PageId,
    low_key: u64,
    count: usize,
    /// Whether this page already has an entry in the level above.
    registered: bool,
}

/// Incremental bottom-up builder for the internal levels of a tree, fed
/// `(low_key, child)` entries in ascending key order.
pub struct UpperBuilder {
    pool: Arc<BufferPool>,
    fsm: Arc<FreeSpaceMap>,
    /// Target entries per page: `fill × NODE_CAPACITY`, at least 2.
    fill_entries: usize,
    /// The tree level of the children being pushed (0 when building above
    /// leaves).
    child_level: u8,
    /// `levels[i]` builds pages at level `child_level + 1 + i`.
    levels: Vec<LevelState>,
    /// Pages dirtied since the last [`Self::take_touched`] (stable points).
    touched: BTreeSet<PageId>,
    /// Every page this builder allocated (for cleanup on abandon).
    all_pages: Vec<PageId>,
    last_key: Option<u64>,
    entries_pushed: u64,
}

impl UpperBuilder {
    /// Start building internal levels above children at `child_level`,
    /// filling pages to `node_fill` (clamped to `[2, NODE_CAPACITY]`
    /// entries).
    pub fn new(
        pool: Arc<BufferPool>,
        fsm: Arc<FreeSpaceMap>,
        child_level: u8,
        node_fill: f64,
    ) -> UpperBuilder {
        let fill_entries = ((NODE_CAPACITY as f64 * node_fill) as usize).clamp(2, NODE_CAPACITY);
        UpperBuilder {
            pool,
            fsm,
            fill_entries,
            child_level,
            levels: Vec::new(),
            touched: BTreeSet::new(),
            all_pages: Vec::new(),
            last_key: None,
            entries_pushed: 0,
        }
    }

    /// Resume a builder from a partially-built tree that reached disk at a
    /// pass-3 stable point (§7.3): the force-writes guarantee a durable path
    /// from `root` down its rightmost spine, which is exactly the builder's
    /// in-flight state.
    pub fn resume(
        pool: Arc<BufferPool>,
        fsm: Arc<FreeSpaceMap>,
        child_level: u8,
        node_fill: f64,
        root: PageId,
    ) -> BTreeResult<UpperBuilder> {
        let mut b = UpperBuilder::new(pool, fsm, child_level, node_fill);
        // Walk the rightmost spine top-down, then reverse into level order.
        let mut spine: Vec<LevelState> = Vec::new();
        let mut cur = root;
        let mut parent_last_child: Option<PageId> = None;
        let bottom_last_key;
        loop {
            let g = b.pool.fetch(cur)?;
            let page = g.read();
            if page.page_type() != Some(obr_storage::PageType::Internal) {
                return Err(BTreeError::Inconsistent(format!(
                    "resume: {cur} is not internal"
                )));
            }
            let node = crate::node::NodeRef::new(&page);
            let (first_key, _) = node
                .first_entry()
                .ok_or_else(|| BTreeError::Inconsistent(format!("resume: {cur} empty")))?;
            let (last_key, last_child) = node.last_entry().expect("non-empty");
            let level = page.level();
            spine.push(LevelState {
                page: cur,
                low_key: first_key,
                count: node.count(),
                registered: parent_last_child == Some(cur),
            });
            b.all_pages.push(cur);
            if level == child_level + 1 {
                bottom_last_key = Some(last_key);
                break;
            }

            parent_last_child = Some(last_child);
            cur = last_child;
        }
        spine.reverse(); // levels[0] = just above the children
        b.levels = spine;
        b.last_key = bottom_last_key;
        Ok(b)
    }

    /// Entries pushed so far.
    pub fn entries_pushed(&self) -> u64 {
        self.entries_pushed
    }

    /// The last (largest) low key pushed, if any.
    pub fn last_key(&self) -> Option<u64> {
        self.last_key
    }

    /// Pages dirtied since the last call; used by pass-3 stable points to
    /// know which new-tree pages (and ancestors) to force to disk.
    pub fn take_touched(&mut self) -> Vec<PageId> {
        let v: Vec<PageId> = self.touched.iter().copied().collect();
        self.touched.clear();
        v
    }

    /// The current top-level page (the §7.3 "concurrent root" hint logged
    /// at stable points). `None` before the first push.
    pub fn top_page(&self) -> Option<PageId> {
        self.levels.last().map(|l| l.page)
    }

    /// Every page allocated by this builder so far (cleanup on abandon, and
    /// the §7.3 rule that space allocated after the last force-write is
    /// deallocated during recovery).
    pub fn pages_allocated(&self) -> Vec<PageId> {
        self.all_pages.clone()
    }

    /// Feed the next child entry, in ascending `low_key` order.
    pub fn push(&mut self, low_key: u64, child: PageId) -> BTreeResult<()> {
        if let Some(last) = self.last_key {
            if low_key <= last {
                return Err(BTreeError::Inconsistent(format!(
                    "builder keys must ascend: {low_key} after {last}"
                )));
            }
        }
        self.last_key = Some(low_key);
        self.entries_pushed += 1;
        self.push_at(0, low_key, child)
    }

    fn start_page(&mut self, idx: usize, low_key: u64, child: PageId) -> BTreeResult<LevelState> {
        let level = self.child_level + 1 + idx as u8;
        let id = self
            .fsm
            .allocate_internal()
            .ok_or(StorageError::NoFreePage)?;
        let g = self.pool.fetch_new(id)?;
        let mut page = g.write();
        let mut node = NodeView::init(&mut page, level);
        node.insert_entry(low_key, child)?;
        node.page_mut().set_low_mark(low_key);
        self.touched.insert(id);
        self.all_pages.push(id);
        Ok(LevelState {
            page: id,
            low_key,
            count: 1,
            registered: false,
        })
    }

    fn push_at(&mut self, idx: usize, low_key: u64, child: PageId) -> BTreeResult<()> {
        if idx == self.levels.len() {
            let st = self.start_page(idx, low_key, child)?;
            self.levels.push(st);
            return Ok(());
        }
        if self.levels[idx].count < self.fill_entries {
            let page = self.levels[idx].page;
            let g = self.pool.fetch(page)?;
            let mut p = g.write();
            NodeView::new(&mut p).insert_entry(low_key, child)?;
            drop(p);
            self.touched.insert(page);
            self.levels[idx].count += 1;
            return Ok(());
        }
        // Current page filled to the fill factor: start a new one and make
        // sure both it and (lazily) the old first page are registered above.
        let fresh = self.start_page(idx, low_key, child)?;
        let old = std::mem::replace(&mut self.levels[idx], fresh);
        if !old.registered {
            self.push_at(idx + 1, old.low_key, old.page)?;
        }
        let (new_low, new_page) = (self.levels[idx].low_key, self.levels[idx].page);
        self.levels[idx].registered = true;
        self.push_at(idx + 1, new_low, new_page)?;
        Ok(())
    }

    /// Finish the build. With no entries pushed this fails; with entries it
    /// returns the new root and its height.
    pub fn finish(mut self) -> BTreeResult<BuiltTree> {
        if self.levels.is_empty() {
            return Err(BTreeError::Inconsistent(
                "builder finished with no entries".into(),
            ));
        }
        // Register any still-unregistered non-top pages upward.
        let mut idx = 0;
        while idx + 1 < self.levels.len() {
            if !self.levels[idx].registered {
                let (low, page) = (self.levels[idx].low_key, self.levels[idx].page);
                self.levels[idx].registered = true;
                self.push_at(idx + 1, low, page)?;
            }
            idx += 1;
        }
        let top = self.levels.last().expect("non-empty");
        Ok(BuiltTree {
            root: top.page,
            height: self.child_level + self.levels.len() as u8,
        })
    }
}

/// Build a complete tree (leaves + upper levels) from sorted unique
/// records. Pages come from `fsm` in ascending order, so a fresh region
/// yields physically contiguous leaves.
// protocol: no-wal bulk-load writes fresh pages and is made durable by the explicit flush_all barrier, not by logging
pub fn bulk_build(
    pool: &Arc<BufferPool>,
    fsm: &Arc<FreeSpaceMap>,
    records: &[(u64, Vec<u8>)],
    leaf_fill: f64,
    node_fill: f64,
    side: SidePointerMode,
) -> BTreeResult<BuiltTree> {
    let leaf_budget = ((LEAF_BODY as f64 * leaf_fill) as usize).clamp(64, LEAF_BODY);
    // Cut records into leaves by the byte budget.
    let mut leaves: Vec<(u64, PageId)> = Vec::new();
    let mut i = 0usize;
    let mut prev_leaf: Option<PageId> = None;
    while i < records.len() {
        let mut used = 0usize;
        let start = i;
        while i < records.len() {
            let need = 10 + records[i].1.len();
            if (used + need > leaf_budget && i > start) || used + need > LEAF_BODY {
                break;
            }
            used += need;
            i += 1;
        }
        let id = fsm.allocate_leaf().ok_or(StorageError::NoFreePage)?;
        let g = pool.fetch_new(id)?;
        let mut page = g.write();
        let mut leaf = LeafView::init(&mut page);
        leaf.extend(&records[start..i])?;
        leaf.page_mut().set_low_mark(records[start].0);
        if side == SidePointerMode::TwoWay {
            if let Some(prev) = prev_leaf {
                page.set_left_sibling(prev);
            }
        }
        drop(page);
        if side != SidePointerMode::None {
            if let Some(prev) = prev_leaf {
                let pg = pool.fetch(prev)?;
                pg.write().set_right_sibling(id);
            }
        }
        prev_leaf = Some(id);
        leaves.push((records[start].0, id));
    }
    match leaves.len() {
        0 => {
            // Empty tree: a single empty leaf is the root.
            let id = fsm.allocate_leaf().ok_or(StorageError::NoFreePage)?;
            let g = pool.fetch_new(id)?;
            let mut page = g.write();
            LeafView::init(&mut page);
            Ok(BuiltTree {
                root: id,
                height: 0,
            })
        }
        1 => Ok(BuiltTree {
            root: leaves[0].1,
            height: 0,
        }),
        _ => {
            let mut upper = UpperBuilder::new(Arc::clone(pool), Arc::clone(fsm), 0, node_fill);
            for (low, id) in &leaves {
                upper.push(*low, *id)?;
            }
            upper.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obr_storage::{DiskManager, InMemoryDisk};

    fn env(pages: u32) -> (Arc<BufferPool>, Arc<FreeSpaceMap>) {
        let disk = Arc::new(InMemoryDisk::new(pages));
        let pool = Arc::new(BufferPool::new(
            disk as Arc<dyn DiskManager>,
            pages as usize,
        ));
        let fsm = Arc::new(FreeSpaceMap::new_all_free(pages));
        (pool, fsm)
    }

    #[test]
    fn builder_single_page_becomes_root() {
        let (pool, fsm) = env(64);
        let mut b = UpperBuilder::new(pool, fsm, 0, 0.9);
        for k in 0..5u64 {
            b.push(k * 10, PageId(k as u32 + 50)).unwrap();
        }
        let built = b.finish().unwrap();
        assert_eq!(built.height, 1);
    }

    #[test]
    fn builder_overflow_creates_levels() {
        let (pool, fsm) = env(4096);
        // Tiny fill: 2 entries per page forces many levels.
        let mut b = UpperBuilder::new(Arc::clone(&pool), fsm, 0, 0.0);
        let n = 64u64;
        for k in 0..n {
            b.push(k, PageId(1000 + k as u32)).unwrap();
        }
        let built = b.finish().unwrap();
        // 64 children / 2 per page = 32 -> 16 -> 8 -> 4 -> 2 -> 1: height 6.
        assert_eq!(built.height, 6);
        let g = pool.fetch(built.root).unwrap();
        let page = g.read();
        assert_eq!(page.level(), 6);
        assert_eq!(page.low_mark(), 0);
    }

    #[test]
    fn builder_rejects_unsorted_input() {
        let (pool, fsm) = env(64);
        let mut b = UpperBuilder::new(pool, fsm, 0, 0.9);
        b.push(10, PageId(1)).unwrap();
        assert!(b.push(10, PageId(2)).is_err());
        assert!(b.push(5, PageId(3)).is_err());
    }

    #[test]
    fn builder_empty_finish_is_error() {
        let (pool, fsm) = env(64);
        let b = UpperBuilder::new(pool, fsm, 0, 0.9);
        assert!(b.finish().is_err());
    }

    #[test]
    fn touched_pages_drain_for_stable_points() {
        let (pool, fsm) = env(256);
        let mut b = UpperBuilder::new(pool, fsm, 0, 0.0);
        b.push(1, PageId(100)).unwrap();
        let t1 = b.take_touched();
        assert!(!t1.is_empty());
        assert!(b.take_touched().is_empty());
        b.push(2, PageId(101)).unwrap();
        assert!(!b.take_touched().is_empty());
        assert_eq!(b.entries_pushed(), 2);
        assert!(b.top_page().is_some());
        assert!(!b.pages_allocated().is_empty());
    }

    #[test]
    fn bulk_build_empty_records_gives_single_leaf() {
        let (pool, fsm) = env(64);
        let built = bulk_build(&pool, &fsm, &[], 0.9, 0.9, SidePointerMode::TwoWay).unwrap();
        assert_eq!(built.height, 0);
    }
}
