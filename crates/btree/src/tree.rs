//! The B+-tree proper: search, insert with splits, free-at-empty deletes,
//! range scans over side pointers, bulk loading, and introspection for the
//! reorganizer.
//!
//! ## Physical synchronization
//!
//! Record operations take a short write latch on one leaf. Structure
//! modifications (splits, root growth, free-at-empty deallocation, and every
//! reorganization unit) serialize on a single SMO mutex and bump an *SMO
//! epoch*. Descents are optimistic: read the epoch, navigate with brief read
//! latches, latch the target leaf, and re-check the epoch — if any SMO ran
//! meanwhile, retry. Once the leaf is latched with a stable epoch, its key
//! range cannot move (anything that would move it must write-latch the
//! leaf).
//!
//! Logical locking (S/X/R/RX of §4) lives in `obr-txn`/`obr-core` above
//! this layer.

use obr_sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use obr_sync::{Mutex, MutexGuard};

use obr_storage::{BufferPool, FreeSpaceMap, Lsn, Page, PageId, PageType, StorageError, PAGE_SIZE};
use obr_wal::{LogManager, LogRecord, TxnId};

use crate::error::{BTreeError, BTreeResult};
use crate::leaf::{LeafRef, LeafView};
use crate::meta::{MetaRef, MetaView};
use crate::node::{NodeRef, NodeView, NODE_CAPACITY};
use crate::stats::TreeStats;

/// Side-pointer configuration (§4.3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SidePointerMode {
    /// No leaf side pointers; range scans re-descend per leaf.
    None,
    /// Right-pointing chain only.
    OneWay,
    /// Doubly-linked leaves.
    TwoWay,
}

/// Observer of base-page (parent-of-leaf) changes, installed by the
/// reorganizer during pass 3 (§7.2 of the paper).
///
/// `gate` runs *before* the structure modification, outside any latch or
/// SMO lock — this is where the updater's IX request on the side file
/// blocks while the switch holds its X lock. `ungate` runs after the SMO.
/// The upsert/remove notifications fire while the SMO is applied, for every
/// `(low_key -> leaf)` mapping change on a base page; the observer decides
/// (by comparing with `Get_Current()`) whether a side-file entry is needed.
pub trait SmoObserver: Send + Sync {
    /// Called before an SMO that may change base entries; returns a token.
    fn gate(&self) -> u64;
    /// Called after the SMO with the token from [`Self::gate`].
    fn ungate(&self, token: u64);
    /// A base-page `(key -> leaf)` mapping was added or repointed.
    fn base_entry_upserted(&self, key: u64, leaf: PageId);
    /// A base-page entry was removed.
    fn base_entry_removed(&self, key: u64);
}

/// The B+-tree.
pub struct BTree {
    pool: Arc<BufferPool>,
    fsm: Arc<FreeSpaceMap>,
    log: Arc<LogManager>,
    meta_id: PageId,
    smo: Mutex<()>,
    /// Even = quiescent; odd = an SMO is mutating the structure.
    epoch: AtomicU64,
    side: SidePointerMode,
    observer: obr_sync::RwLock<Option<Arc<dyn SmoObserver>>>,
}

/// RAII guard for a structure modification: holds the SMO mutex and keeps
/// the epoch odd for its lifetime. The reorganizer takes one per unit
/// application.
pub struct SmoGuard<'a> {
    _mutex: MutexGuard<'a, ()>,
    epoch: &'a AtomicU64,
}

impl Drop for SmoGuard<'_> {
    fn drop(&mut self) {
        self.epoch.fetch_add(1, Ordering::Release); // odd -> even
    }
}

fn image_of(page: &Page) -> Box<[u8; PAGE_SIZE]> {
    Box::new(*page.bytes())
}

impl BTree {
    /// Create a brand-new tree: a meta page and one empty root leaf,
    /// durable on return.
    // protocol: no-wal bootstrap: the tree is created before any log exists and made durable by flushing
    pub fn create(
        pool: Arc<BufferPool>,
        fsm: Arc<FreeSpaceMap>,
        log: Arc<LogManager>,
        side: SidePointerMode,
    ) -> BTreeResult<BTree> {
        let meta_id = fsm.allocate_internal().ok_or(StorageError::NoFreePage)?;
        let root_id = fsm.allocate_leaf().ok_or(StorageError::NoFreePage)?;
        {
            let mg = pool.fetch_new(meta_id)?;
            let mut page = mg.write();
            let mut meta = MetaView::init(&mut page);
            meta.set_root(root_id);
            meta.set_height(0);
        }
        {
            let rg = pool.fetch_new(root_id)?;
            let mut page = rg.write();
            LeafView::init(&mut page);
        }
        pool.flush_page(meta_id)?;
        pool.flush_page(root_id)?;
        Ok(BTree {
            pool,
            fsm,
            log,
            meta_id,
            smo: Mutex::named((), "tree.smo"),
            epoch: AtomicU64::new(0),
            side,
            observer: obr_sync::RwLock::named(None, "tree.observer"),
        })
    }

    /// Open an existing tree from its meta page.
    pub fn open(
        pool: Arc<BufferPool>,
        fsm: Arc<FreeSpaceMap>,
        log: Arc<LogManager>,
        meta_id: PageId,
        side: SidePointerMode,
    ) -> BTreeResult<BTree> {
        {
            let mg = pool.fetch(meta_id)?;
            let mut page = mg.write();
            MetaView::new(&mut page)?; // validates magic
        }
        Ok(BTree {
            pool,
            fsm,
            log,
            meta_id,
            smo: Mutex::named((), "tree.smo"),
            epoch: AtomicU64::new(0),
            side,
            observer: obr_sync::RwLock::named(None, "tree.observer"),
        })
    }

    /// The buffer pool backing this tree.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The free-space map.
    pub fn fsm(&self) -> &Arc<FreeSpaceMap> {
        &self.fsm
    }

    /// The log manager.
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The meta page id.
    pub fn meta_id(&self) -> PageId {
        self.meta_id
    }

    /// The side-pointer configuration.
    pub fn side_mode(&self) -> SidePointerMode {
        self.side
    }

    /// `(root, height)` as currently anchored.
    pub fn anchor(&self) -> BTreeResult<(PageId, u8)> {
        let mg = self.pool.fetch(self.meta_id)?;
        let page = mg.read();
        let meta = MetaRef::new(&page)?;
        Ok((meta.root(), meta.height()))
    }

    /// Point the tree at a new root (used by recovery and the pass-3
    /// switch). The caller is responsible for logging.
    pub fn set_anchor(&self, root: PageId, height: u8, lsn: Lsn) -> BTreeResult<()> {
        let mg = self.pool.fetch(self.meta_id)?;
        let mut page = mg.write();
        {
            let mut meta = MetaView::new(&mut page)?;
            meta.set_root(root);
            meta.set_height(height);
        }
        page.set_lsn(lsn);
        Ok(())
    }

    /// Tree generation (the tree's lock name; §7.4 requires old and new
    /// trees to have distinct names).
    pub fn generation(&self) -> BTreeResult<u32> {
        let mg = self.pool.fetch(self.meta_id)?;
        let page = mg.read();
        Ok(MetaRef::new(&page)?.generation())
    }

    /// Bump the generation (on switch).
    pub fn set_generation(&self, g: u32) -> BTreeResult<()> {
        let mg = self.pool.fetch(self.meta_id)?;
        let mut page = mg.write();
        MetaView::new(&mut page)?.set_generation(g);
        Ok(())
    }

    /// The §7.2 reorganization bit.
    pub fn reorg_bit(&self) -> BTreeResult<bool> {
        let mg = self.pool.fetch(self.meta_id)?;
        let page = mg.read();
        Ok(MetaRef::new(&page)?.reorg_bit())
    }

    /// Set/clear the reorganization bit.
    pub fn set_reorg_bit(&self, on: bool) -> BTreeResult<()> {
        let mg = self.pool.fetch(self.meta_id)?;
        let mut page = mg.write();
        MetaView::new(&mut page)?.set_reorg_bit(on);
        Ok(())
    }

    /// Install the pass-3 base-change observer (§7.2).
    pub fn set_observer(&self, obs: Arc<dyn SmoObserver>) {
        *self.observer.write() = Some(obs);
    }

    /// Remove the observer (pass 3 finished).
    pub fn clear_observer(&self) {
        *self.observer.write() = None;
    }

    fn observer(&self) -> Option<Arc<dyn SmoObserver>> {
        self.observer.read().clone()
    }

    fn notify_upsert(&self, parent_level: u8, key: u64, leaf: PageId) {
        if parent_level == 1 {
            if let Some(o) = self.observer() {
                o.base_entry_upserted(key, leaf);
            }
        }
    }

    fn notify_remove(&self, parent_level: u8, key: u64) {
        if parent_level == 1 {
            if let Some(o) = self.observer() {
                o.base_entry_removed(key);
            }
        }
    }

    /// Enter a structure modification: serializes against all other SMOs and
    /// makes concurrent descents retry. Used internally and by the
    /// reorganizer for each unit application.
    pub fn smo_guard(&self) -> SmoGuard<'_> {
        let g = self.smo.lock();
        self.epoch.fetch_add(1, Ordering::Release); // even -> odd
        SmoGuard {
            _mutex: g,
            epoch: &self.epoch,
        }
    }

    fn epoch_stable(&self) -> Option<u64> {
        let e = self.epoch.load(Ordering::Acquire);
        e.is_multiple_of(2).then_some(e)
    }

    /// Raw root-to-leaf descent with no epoch validation. Correct only when
    /// the structure cannot change underneath — i.e. while holding the SMO
    /// guard. Public for the reorganizer, which always holds the guard.
    pub fn path_for_locked(&self, key: u64) -> BTreeResult<Vec<PageId>> {
        let (root, height) = self.anchor()?;
        let mut path = Vec::with_capacity(height as usize + 1);
        let mut cur = root;
        let mut level = height;
        loop {
            path.push(cur);
            if level == 0 {
                return Ok(path);
            }
            let g = self.pool.fetch(cur)?;
            let page = g.read();
            if page.page_type() != Some(PageType::Internal) {
                return Err(BTreeError::Inconsistent(format!(
                    "expected internal page at {cur} (level {level})"
                )));
            }
            match NodeRef::new(&page).child_for(key) {
                Some(c) => cur = c,
                None => {
                    return Err(BTreeError::Inconsistent(format!(
                        "empty internal page {cur} on descent"
                    )))
                }
            }
            level -= 1;
        }
    }

    /// Path of page ids from the root to the leaf for `key`, validated
    /// against concurrent structure modifications (retried around SMOs).
    pub fn path_for(&self, key: u64) -> BTreeResult<Vec<PageId>> {
        let mut spins = 0u32;
        loop {
            spins += 1;
            if spins > 1_000_000 {
                return Err(BTreeError::Inconsistent(
                    "descent did not stabilize (livelock or corrupt tree)".into(),
                ));
            }
            let Some(e1) = self.epoch_stable() else {
                std::thread::yield_now();
                continue;
            };
            match self.path_for_locked(key) {
                Ok(path) => {
                    if self.epoch.load(Ordering::Acquire) == e1 {
                        return Ok(path);
                    }
                }
                Err(_) if self.epoch.load(Ordering::Acquire) != e1 => {
                    // Transient inconsistency caused by a concurrent SMO.
                }
                Err(e) => return Err(e),
            }
            std::thread::yield_now();
        }
    }

    /// The leaf currently responsible for `key`.
    pub fn leaf_for(&self, key: u64) -> BTreeResult<PageId> {
        Ok(*self.path_for(key)?.last().expect("path never empty"))
    }

    /// The base page (parent-of-leaf) for `key`, `None` when the root is a
    /// leaf.
    pub fn base_for(&self, key: u64) -> BTreeResult<Option<PageId>> {
        let path = self.path_for(key)?;
        Ok(if path.len() >= 2 {
            Some(path[path.len() - 2])
        } else {
            None
        })
    }

    /// Latch the leaf for `key` with a shared latch and run `f` on it,
    /// retrying around SMOs. The epoch is validated *while the latch is
    /// held*, so `f` never observes a leaf whose key range has moved.
    fn with_leaf_read<T>(&self, key: u64, mut f: impl FnMut(PageId, &Page) -> T) -> BTreeResult<T> {
        let mut spins = 0u32;
        loop {
            spins += 1;
            if spins > 100_000 {
                return Err(BTreeError::Inconsistent(
                    "descent did not stabilize (livelock or corrupt tree)".into(),
                ));
            }
            let Some(e1) = self.epoch_stable() else {
                std::thread::yield_now();
                continue;
            };
            let path = self.path_for(key)?;
            let leaf_id = *path.last().expect("path never empty");
            let g = self.pool.fetch(leaf_id)?;
            let page = g.read();
            if self.epoch.load(Ordering::Acquire) != e1 || page.page_type() != Some(PageType::Leaf)
            {
                drop(page);
                std::thread::yield_now();
                continue;
            }
            return Ok(f(leaf_id, &page));
        }
    }

    /// Exclusive-latch counterpart of [`Self::with_leaf_read`].
    fn with_leaf_write<T>(
        &self,
        key: u64,
        mut f: impl FnMut(PageId, &mut Page) -> BTreeResult<T>,
    ) -> BTreeResult<T> {
        let mut spins = 0u32;
        loop {
            spins += 1;
            if spins > 100_000 {
                return Err(BTreeError::Inconsistent(
                    "descent did not stabilize (livelock or corrupt tree)".into(),
                ));
            }
            let Some(e1) = self.epoch_stable() else {
                std::thread::yield_now();
                continue;
            };
            let path = self.path_for(key)?;
            let leaf_id = *path.last().expect("path never empty");
            let g = self.pool.fetch(leaf_id)?;
            let mut page = g.write();
            if self.epoch.load(Ordering::Acquire) != e1 || page.page_type() != Some(PageType::Leaf)
            {
                drop(page);
                std::thread::yield_now();
                continue;
            }
            return f(leaf_id, &mut page);
        }
    }

    /// Point lookup.
    pub fn search(&self, key: u64) -> BTreeResult<Option<Vec<u8>>> {
        self.with_leaf_read(key, |_, page| LeafRef::new(page).get(key))
    }

    /// Insert a record. Returns the LSN of the insert log record; `prev` is
    /// the owning transaction's previous LSN (its undo chain).
    pub fn insert(&self, txn: TxnId, prev: Lsn, key: u64, value: &[u8]) -> BTreeResult<Lsn> {
        if value.len() > crate::leaf::MAX_VALUE {
            return Err(BTreeError::RecordTooLarge(value.len()));
        }
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 64 {
                return Err(BTreeError::Inconsistent(
                    "insert did not converge after 64 split rounds".into(),
                ));
            }
            let r = self.with_leaf_write(key, |leaf_id, page| {
                let mut leaf = LeafView::new(page);
                if leaf.contains(key) {
                    return Ok(Err(InsertBlock::Duplicate));
                }
                if !leaf.fits(value.len()) {
                    return Ok(Err(InsertBlock::Full));
                }
                leaf.insert(key, value)?;
                let lsn = self.log.append(&LogRecord::TxnInsert {
                    txn,
                    page: leaf_id,
                    key,
                    value: value.to_vec(),
                    prev_lsn: prev,
                });
                page.set_lsn(lsn);
                Ok(Ok(lsn))
            })?;
            match r {
                Ok(lsn) => return Ok(lsn),
                Err(InsertBlock::Duplicate) => return Err(BTreeError::KeyExists(key)),
                Err(InsertBlock::Full) => self.split_one(key, value.len())?,
            }
        }
    }

    /// Delete a record (free-at-empty: an emptied leaf is deallocated, never
    /// merged). Returns the delete record's LSN and the old value.
    pub fn delete(&self, txn: TxnId, prev: Lsn, key: u64) -> BTreeResult<(Lsn, Vec<u8>)> {
        let (lsn, old, emptied) = self.with_leaf_write(key, |leaf_id, page| {
            let mut leaf = LeafView::new(page);
            match leaf.remove(key) {
                None => Ok((Lsn::ZERO, None, false)),
                Some(old) => {
                    let emptied = leaf.is_empty();
                    let lsn = self.log.append(&LogRecord::TxnDelete {
                        txn,
                        page: leaf_id,
                        key,
                        old_value: old.clone(),
                        prev_lsn: prev,
                    });
                    page.set_lsn(lsn);
                    Ok((lsn, Some(old), emptied))
                }
            }
        })?;
        let Some(old) = old else {
            return Err(BTreeError::KeyNotFound(key));
        };
        if emptied {
            self.free_at_empty(key)?;
        }
        Ok((lsn, old))
    }

    /// Undo of an insert during recovery/rollback: remove `key` wherever it
    /// now lives and log a redo-only compensation record.
    pub fn undo_insert(&self, txn: TxnId, key: u64, undo_next: Lsn) -> BTreeResult<Lsn> {
        self.with_leaf_write(key, |leaf_id, page| {
            let mut leaf = LeafView::new(page);
            leaf.remove(key); // absent is fine: the insert never reached disk
            let lsn = self.log.append(&LogRecord::Clr {
                txn,
                page: leaf_id,
                reinsert: false,
                key,
                value: Vec::new(),
                undo_next,
            });
            page.set_lsn(lsn);
            Ok(lsn)
        })
    }

    /// Undo of a delete: re-insert the old value with a compensation record.
    pub fn undo_delete(
        &self,
        txn: TxnId,
        key: u64,
        old_value: &[u8],
        undo_next: Lsn,
    ) -> BTreeResult<Lsn> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 64 {
                return Err(BTreeError::Inconsistent(
                    "undo_delete did not converge".into(),
                ));
            }
            let done = self.with_leaf_write(key, |leaf_id, page| {
                let mut leaf = LeafView::new(page);
                if !leaf.contains(key) && !leaf.fits(old_value.len()) {
                    return Ok(None); // needs a split round
                }
                leaf.upsert(key, old_value)?;
                let lsn = self.log.append(&LogRecord::Clr {
                    txn,
                    page: leaf_id,
                    reinsert: true,
                    key,
                    value: old_value.to_vec(),
                    undo_next,
                });
                page.set_lsn(lsn);
                Ok(Some(lsn))
            })?;
            match done {
                Some(lsn) => return Ok(lsn),
                None => self.split_one(key, old_value.len())?,
            }
        }
    }

    /// Undo of an update: restore the old value with a compensation record.
    pub fn undo_update(
        &self,
        txn: TxnId,
        key: u64,
        old_value: &[u8],
        undo_next: Lsn,
    ) -> BTreeResult<Lsn> {
        self.undo_delete(txn, key, old_value, undo_next)
    }

    /// One structure modification round for `key`: grows the root, splits
    /// the shallowest full node on the path, or splits the leaf.
    fn split_one(&self, key: u64, value_len: usize) -> BTreeResult<()> {
        let gate = self.observer().map(|o| {
            let t = o.gate();
            (o, t)
        });
        let result = self.split_one_gated(key, value_len);
        if let Some((o, t)) = gate {
            o.ungate(t);
        }
        result
    }

    fn split_one_gated(&self, key: u64, value_len: usize) -> BTreeResult<()> {
        let _g = self.smo_guard();
        let (root, height) = self.anchor()?;
        // Root is a leaf that is full: grow the tree first.
        if height == 0 {
            let needs = {
                let g = self.pool.fetch(root)?;
                let page = g.read();
                let leaf = LeafRef::new(&page);
                leaf.free_bytes() < 10 + value_len
            };
            if needs {
                self.grow_root(root)?;
            }
            return Ok(());
        }
        let path = self.path_for_locked(key)?;
        // Shallowest full internal node splits first (so its parent has
        // room when children split later).
        for (i, &id) in path.iter().enumerate().take(path.len() - 1) {
            let full = {
                let g = self.pool.fetch(id)?;
                let page = g.read();
                NodeRef::new(&page).count() >= NODE_CAPACITY
            };
            if full {
                if i == 0 {
                    self.grow_root(root)?;
                } else {
                    self.split_internal(path[i - 1], id)?;
                }
                return Ok(());
            }
        }
        // All internal nodes have room: split the leaf if still needed.
        let leaf_id = *path.last().expect("path never empty");
        let parent_id = path[path.len() - 2];
        let needs = {
            let g = self.pool.fetch(leaf_id)?;
            let page = g.read();
            if page.page_type() != Some(PageType::Leaf) {
                return Ok(()); // raced; caller retries
            }
            LeafRef::new(&page).free_bytes() < 10 + value_len
        };
        if needs {
            self.split_leaf(parent_id, leaf_id, key)?;
        }
        Ok(())
    }

    /// Debug-build invariant hook: validate the pages an SMO just rewrote,
    /// while their latches are still held (so the check races with
    /// nothing). Each page must be self-consistent, and a parent page must
    /// actually route to every child the SMO registered. Release builds
    /// compile this away.
    #[cfg(debug_assertions)]
    fn debug_assert_smo_pages(parent: Option<(&mut Page, &[PageId])>, leaves: &mut [&mut Page]) {
        for page in leaves.iter_mut() {
            match page.page_type() {
                Some(PageType::Leaf) => LeafView::new(page)
                    .validate()
                    .expect("SMO produced an invalid leaf"),
                _ => NodeView::new(page)
                    .validate()
                    .expect("SMO produced an invalid node"),
            }
        }
        if let Some((ppage, children)) = parent {
            NodeView::new(ppage)
                .validate()
                .expect("SMO produced an invalid parent");
            let routed = NodeRef::new(ppage).children();
            for child in children {
                assert!(
                    routed.contains(child),
                    "SMO left child {child} unrouted in its parent"
                );
            }
        }
    }

    /// Replace the root with a new internal root holding one entry for the
    /// old root. Height grows by one.
    fn grow_root(&self, old_root: PageId) -> BTreeResult<()> {
        let (_, height) = self.anchor()?;
        let new_root = self
            .fsm
            .allocate_internal()
            .ok_or(StorageError::NoFreePage)?;
        let ng = self.pool.fetch_new(new_root)?;
        let og = self.pool.fetch(old_root)?;
        let mut npage = ng.write();
        let opage = og.read();
        let low = opage.low_mark();
        let low = if low == u64::MAX { 0 } else { low };
        {
            let mut node = NodeView::init(&mut npage, height + 1);
            node.insert_entry(low, old_root)?;
        }
        let lsn = self.log.append(&LogRecord::Smo {
            images: vec![(new_root, image_of(&npage))],
            new_anchor: Some((new_root, height + 1)),
        });
        npage.set_lsn(lsn);
        #[cfg(debug_assertions)]
        Self::debug_assert_smo_pages(Some((&mut npage, &[old_root])), &mut []);
        drop(npage);
        drop(opage);
        self.set_anchor(new_root, height + 1, lsn)?;
        Ok(())
    }

    /// Split a full internal node `node_id` under `parent_id` (which is
    /// guaranteed to have room).
    fn split_internal(&self, parent_id: PageId, node_id: PageId) -> BTreeResult<()> {
        let new_id = self
            .fsm
            .allocate_internal()
            .ok_or(StorageError::NoFreePage)?;
        let pg = self.pool.fetch(parent_id)?;
        let ng = self.pool.fetch(node_id)?;
        let sg = self.pool.fetch_new(new_id)?;
        let mut ppage = pg.write();
        let mut npage = ng.write();
        let mut spage = sg.write();
        let level = npage.level();
        let entries = NodeRef::new(&npage).entries();
        let split_at = entries.len() / 2;
        let (keep, moved) = entries.split_at(split_at);
        {
            // Rebuild the left node with the kept entries.
            let low_mark = npage.low_mark();
            let mut node = NodeView::init(&mut npage, level);
            for (k, c) in keep {
                node.insert_entry(*k, *c)?;
            }
            node.page_mut().set_low_mark(low_mark);
        }
        {
            let mut sib = NodeView::init(&mut spage, level);
            for (k, c) in moved {
                sib.insert_entry(*k, *c)?;
            }
        }
        let sib_low = moved[0].0;
        {
            let mut parent = NodeView::new(&mut ppage);
            parent.insert_entry(sib_low, new_id)?;
        }
        let lsn = self.log.append(&LogRecord::Smo {
            images: vec![
                (node_id, image_of(&npage)),
                (new_id, image_of(&spage)),
                (parent_id, image_of(&ppage)),
            ],
            new_anchor: None,
        });
        npage.set_lsn(lsn);
        spage.set_lsn(lsn);
        ppage.set_lsn(lsn);
        #[cfg(debug_assertions)]
        Self::debug_assert_smo_pages(
            Some((&mut ppage, &[node_id, new_id])),
            &mut [&mut npage, &mut spage],
        );
        Ok(())
    }

    /// Split a leaf under `parent_id` (which has room). `key` is the
    /// incoming key that triggered the split.
    fn split_leaf(&self, parent_id: PageId, leaf_id: PageId, key: u64) -> BTreeResult<()> {
        let new_id = self.fsm.allocate_leaf().ok_or(StorageError::NoFreePage)?;
        // One-way chains have no back pointer; find the left neighbour via a
        // tree walk *before* taking latches (the SMO mutex keeps it stable).
        let one_way_prev = if self.side == SidePointerMode::OneWay {
            self.find_left_neighbour(leaf_id)?
        } else {
            None
        };
        let pg = self.pool.fetch(parent_id)?;
        let lg = self.pool.fetch(leaf_id)?;
        let sg = self.pool.fetch_new(new_id)?;
        let mut ppage = pg.write();
        let mut lpage = lg.write();
        let mut spage = sg.write();
        if lpage.page_type() != Some(PageType::Leaf) {
            return Ok(()); // raced with another SMO round
        }
        let recs = LeafRef::new(&lpage).records();
        let old_right = lpage.right_sibling();
        let old_left = lpage.left_sibling();
        // The parent's routing entry for `key` (it points at this leaf).
        let l_entry_key = NodeRef::new(&ppage)
            .entry_for(key)
            .ok_or_else(|| BTreeError::Inconsistent("parent has no routing entry".into()))?
            .0;
        // Decide how to split. A >=2-record leaf splits down the middle and
        // the new sibling goes to the *right*; a 1-record leaf (giant
        // records) splits around the incoming key, possibly putting the new
        // (empty) sibling on the left.
        enum Plan {
            /// New sibling on the right: (records moved, its parent key).
            Right(Vec<(u64, Vec<u8>)>, u64),
            /// New empty sibling on the left, taking over the low range.
            Left,
        }
        let plan = if recs.len() >= 2 {
            let at = recs.len() / 2;
            Plan::Right(recs[at..].to_vec(), recs[at].0)
        } else if recs.len() == 1 && key > recs[0].0 {
            Plan::Right(Vec::new(), key)
        } else if recs.len() == 1 {
            Plan::Left
        } else {
            return Ok(()); // empty leaf always fits; nothing to do
        };
        let mut images: Vec<(PageId, Box<[u8; PAGE_SIZE]>)> = Vec::with_capacity(4);
        let mut extra_lsn_pages: Vec<PageId> = Vec::new();
        let mut base_upserts: Vec<(u64, PageId)> = Vec::new();
        match plan {
            Plan::Right(moved, sib_low) => {
                let keep_n = recs.len() - moved.len();
                {
                    let low_mark = lpage.low_mark();
                    let mut leaf = LeafView::init(&mut lpage);
                    leaf.extend(&recs[..keep_n])?;
                    leaf.page_mut().set_low_mark(low_mark);
                    leaf.page_mut().set_left_sibling(old_left);
                }
                {
                    let mut sib = LeafView::init(&mut spage);
                    sib.extend(&moved)?;
                    sib.page_mut().set_low_mark(sib_low);
                }
                match self.side {
                    SidePointerMode::None => {}
                    SidePointerMode::OneWay => {
                        lpage.set_right_sibling(new_id);
                        spage.set_right_sibling(old_right);
                    }
                    SidePointerMode::TwoWay => {
                        lpage.set_right_sibling(new_id);
                        spage.set_left_sibling(leaf_id);
                        spage.set_right_sibling(old_right);
                        if old_right.is_valid() {
                            let rg = self.pool.fetch(old_right)?;
                            let mut rpage = rg.write();
                            rpage.set_left_sibling(new_id);
                            images.push((old_right, image_of(&rpage)));
                            extra_lsn_pages.push(old_right);
                        }
                    }
                }
                base_upserts.push((sib_low, new_id));
                let mut parent = NodeView::new(&mut ppage);
                if sib_low == l_entry_key {
                    // The leaf held clamped keys below its own entry key, so
                    // the split point collides with the existing entry. The
                    // entry's range now belongs to the new sibling; the left
                    // leaf is re-registered under its first record key
                    // (strictly smaller, and unique because only the
                    // parent's first entry can be clamped into).
                    parent.set_child(l_entry_key, new_id)?;
                    parent.insert_entry(recs[0].0, leaf_id)?;
                    base_upserts.push((recs[0].0, leaf_id));
                } else {
                    parent.insert_entry(sib_low, new_id)?;
                }
            }
            Plan::Left => {
                // L keeps its single record; N (empty) takes the low range
                // [min(key, l_entry_key), rec_key).
                let rec_key = recs[0].0;
                {
                    let mut sib = LeafView::init(&mut spage);
                    sib.page_mut().set_low_mark(key.min(l_entry_key));
                }
                match self.side {
                    SidePointerMode::None => {}
                    SidePointerMode::OneWay => {
                        spage.set_right_sibling(leaf_id);
                        if let Some(prev) = one_way_prev {
                            let ng = self.pool.fetch(prev)?;
                            let mut npage = ng.write();
                            npage.set_right_sibling(new_id);
                            images.push((prev, image_of(&npage)));
                            extra_lsn_pages.push(prev);
                        }
                    }
                    SidePointerMode::TwoWay => {
                        spage.set_left_sibling(old_left);
                        spage.set_right_sibling(leaf_id);
                        lpage.set_left_sibling(new_id);
                        if old_left.is_valid() {
                            let lg2 = self.pool.fetch(old_left)?;
                            let mut l2 = lg2.write();
                            l2.set_right_sibling(new_id);
                            images.push((old_left, image_of(&l2)));
                            extra_lsn_pages.push(old_left);
                        }
                    }
                }
                let mut parent = NodeView::new(&mut ppage);
                if l_entry_key <= key {
                    // N takes over the old routing entry; L is re-registered
                    // under its record's key (distinct: l_entry_key <= key
                    // < rec_key).
                    parent.set_child(l_entry_key, new_id)?;
                    parent.insert_entry(rec_key, leaf_id)?;
                    base_upserts.push((l_entry_key, new_id));
                    base_upserts.push((rec_key, leaf_id));
                } else {
                    // Clamped leftmost descent: key < l_entry_key; N becomes
                    // the new first entry.
                    parent.insert_entry(key, new_id)?;
                    base_upserts.push((key, new_id));
                }
            }
        }
        images.push((leaf_id, image_of(&lpage)));
        images.push((new_id, image_of(&spage)));
        images.push((parent_id, image_of(&ppage)));
        let lsn = self.log.append(&LogRecord::Smo {
            images,
            new_anchor: None,
        });
        lpage.set_lsn(lsn);
        spage.set_lsn(lsn);
        ppage.set_lsn(lsn);
        #[cfg(debug_assertions)]
        Self::debug_assert_smo_pages(
            Some((&mut ppage, &[leaf_id, new_id])),
            &mut [&mut lpage, &mut spage],
        );
        let parent_level = ppage.level();
        for p in extra_lsn_pages {
            let g = self.pool.fetch(p)?;
            g.write().set_lsn(lsn);
        }
        for (k, c) in base_upserts {
            self.notify_upsert(parent_level, k, c);
        }
        Ok(())
    }

    /// Free-at-empty: deallocate the (still) empty leaf responsible for
    /// `key`, removing its parent entry and patching side pointers; cascade
    /// upward through emptied internal nodes.
    fn free_at_empty(&self, key: u64) -> BTreeResult<()> {
        let gate = self.observer().map(|o| {
            let t = o.gate();
            (o, t)
        });
        let result = self.free_at_empty_gated(key);
        if let Some((o, t)) = gate {
            o.ungate(t);
        }
        result
    }

    fn free_at_empty_gated(&self, key: u64) -> BTreeResult<()> {
        let _g = self.smo_guard();
        let path = self.path_for_locked(key)?;
        if path.len() < 2 {
            return Ok(()); // the root leaf is never deallocated
        }
        let leaf_id = *path.last().expect("non-empty");
        let parent_id = path[path.len() - 2];
        // Never empty the root entirely: keep the last leaf.
        {
            let pg = self.pool.fetch(parent_id)?;
            let ppage = pg.read();
            if NodeRef::new(&ppage).count() <= 1 && path.len() == 2 {
                return Ok(());
            }
        }
        let one_way_prev = if self.side == SidePointerMode::OneWay {
            self.find_left_neighbour(leaf_id)?
        } else {
            None
        };
        let lg = self.pool.fetch(leaf_id)?;
        let pg = self.pool.fetch(parent_id)?;
        let mut lpage = lg.write();
        let mut ppage = pg.write();
        if lpage.page_type() != Some(PageType::Leaf) || !LeafRef::new(&lpage).is_empty() {
            return Ok(()); // raced: someone inserted meanwhile
        }
        let (left, right) = (lpage.left_sibling(), lpage.right_sibling());
        let mut images: Vec<(PageId, Box<[u8; PAGE_SIZE]>)> = Vec::new();
        // Unlink from the side-pointer chain.
        let mut neighbour_lsns: Vec<PageId> = Vec::new();
        match self.side {
            SidePointerMode::None => {}
            SidePointerMode::OneWay => {
                if let Some(prev) = one_way_prev {
                    let ng = self.pool.fetch(prev)?;
                    let mut npage = ng.write();
                    npage.set_right_sibling(right);
                    images.push((prev, image_of(&npage)));
                    neighbour_lsns.push(prev);
                }
            }
            SidePointerMode::TwoWay => {
                if left.is_valid() {
                    let ng = self.pool.fetch(left)?;
                    let mut npage = ng.write();
                    npage.set_right_sibling(right);
                    images.push((left, image_of(&npage)));
                    neighbour_lsns.push(left);
                }
                if right.is_valid() {
                    let ng = self.pool.fetch(right)?;
                    let mut npage = ng.write();
                    npage.set_left_sibling(left);
                    images.push((right, image_of(&npage)));
                    neighbour_lsns.push(right);
                }
            }
        }
        // Remove the parent entry pointing at this leaf.
        let removed_low = {
            let mut parent = NodeView::new(&mut ppage);
            let low = parent
                .repoint_child(leaf_id, leaf_id)
                .ok_or_else(|| BTreeError::Inconsistent(format!("leaf {leaf_id} not in parent")))?;
            parent.remove_entry(low);
            low
        };
        lpage.format(PageType::Free, 0);
        images.push((leaf_id, image_of(&lpage)));
        images.push((parent_id, image_of(&ppage)));
        let lsn = self.log.append(&LogRecord::Smo {
            images,
            new_anchor: None,
        });
        lpage.set_lsn(lsn);
        ppage.set_lsn(lsn);
        for n in neighbour_lsns {
            let g = self.pool.fetch(n)?;
            g.write().set_lsn(lsn);
        }
        let parent_level = ppage.level();
        drop(lpage);
        drop(ppage);
        self.notify_remove(parent_level, removed_low);
        self.pool.flush_page(leaf_id)?; // the Free image must reach disk
        self.pool.discard(leaf_id);
        self.fsm.free(leaf_id);
        // Cascade: if the parent is now empty, free it too (never the root).
        self.cascade_free_internal(&path, path.len() - 2)?;
        Ok(())
    }

    fn cascade_free_internal(&self, path: &[PageId], idx: usize) -> BTreeResult<()> {
        if idx == 0 {
            return Ok(()); // the root shrinks only in pass 3
        }
        let node_id = path[idx];
        let parent_id = path[idx - 1];
        let ng = self.pool.fetch(node_id)?;
        let pg = self.pool.fetch(parent_id)?;
        let mut npage = ng.write();
        let mut ppage = pg.write();
        if npage.page_type() != Some(PageType::Internal) || !NodeRef::new(&npage).is_empty() {
            return Ok(());
        }
        if NodeRef::new(&ppage).count() <= 1 && idx == 1 {
            return Ok(()); // keep the last subtree of the root
        }
        {
            let mut parent = NodeView::new(&mut ppage);
            let low = parent
                .repoint_child(node_id, node_id)
                .ok_or_else(|| BTreeError::Inconsistent(format!("node {node_id} not in parent")))?;
            parent.remove_entry(low);
        }
        npage.format(PageType::Free, 0);
        let lsn = self.log.append(&LogRecord::Smo {
            images: vec![(node_id, image_of(&npage)), (parent_id, image_of(&ppage))],
            new_anchor: None,
        });
        npage.set_lsn(lsn);
        ppage.set_lsn(lsn);
        drop(npage);
        drop(ppage);
        self.pool.flush_page(node_id)?;
        self.pool.discard(node_id);
        self.fsm.free(node_id);
        self.cascade_free_internal(path, idx - 1)
    }

    /// The leaf immediately left (in key order) of `leaf_id`, found via a
    /// tree walk (one-way side-pointer maintenance; call with no latches
    /// held, under the SMO mutex).
    fn find_left_neighbour(&self, leaf_id: PageId) -> BTreeResult<Option<PageId>> {
        let leaves = self.leaves_in_key_order()?;
        Ok(leaves
            .iter()
            .position(|&l| l == leaf_id)
            .and_then(|i| i.checked_sub(1).map(|j| leaves[j])))
    }

    /// Inclusive range scan.
    pub fn range_scan(&self, lo: u64, hi: u64) -> BTreeResult<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::new();
        match self.side {
            SidePointerMode::None => {
                // No chain: walk leaves via the internal structure.
                for leaf in self.leaves_in_key_order()? {
                    let g = self.pool.fetch(leaf)?;
                    let page = g.read();
                    if page.page_type() != Some(PageType::Leaf) {
                        continue;
                    }
                    let r = LeafRef::new(&page);
                    if r.first_key().map(|k| k > hi).unwrap_or(false) {
                        break;
                    }
                    out.extend(r.range(lo, hi));
                }
            }
            _ => {
                let mut cur = self.leaf_for(lo)?;
                let mut hops = 0usize;
                let bound = self.fsm.num_pages() as usize + 1;
                while cur.is_valid() {
                    hops += 1;
                    if hops > bound {
                        return Err(BTreeError::Inconsistent(
                            "side-pointer chain does not terminate (cycle)".into(),
                        ));
                    }
                    let g = self.pool.fetch(cur)?;
                    let page = g.read();
                    if page.page_type() != Some(PageType::Leaf) {
                        break;
                    }
                    let r = LeafRef::new(&page);
                    out.extend(r.range(lo, hi));
                    if r.last_key().map(|k| k >= hi).unwrap_or(false) {
                        break;
                    }
                    cur = page.right_sibling();
                }
            }
        }
        Ok(out)
    }

    /// Base pages (level-1 internal pages) in key order. When the root is a
    /// leaf there are none.
    pub fn base_pages(&self) -> BTreeResult<Vec<PageId>> {
        let (root, height) = self.anchor()?;
        if height == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        self.collect_level(root, height, 1, &mut out)?;
        Ok(out)
    }

    fn collect_level(
        &self,
        page_id: PageId,
        level: u8,
        target: u8,
        out: &mut Vec<PageId>,
    ) -> BTreeResult<()> {
        if level == target {
            out.push(page_id);
            return Ok(());
        }
        let children = {
            let g = self.pool.fetch(page_id)?;
            let page = g.read();
            if page.page_type() != Some(PageType::Internal) {
                return Err(BTreeError::Inconsistent(format!(
                    "expected internal page at level {level}, got {:?} at {page_id}",
                    page.page_type()
                )));
            }
            NodeRef::new(&page).children()
        };
        for c in children {
            self.collect_level(c, level - 1, target, out)?;
        }
        Ok(())
    }

    /// `(low_key, child)` entries of a base page.
    pub fn base_entries(&self, base: PageId) -> BTreeResult<Vec<(u64, PageId)>> {
        let g = self.pool.fetch(base)?;
        let page = g.read();
        if page.page_type() != Some(PageType::Internal) {
            return Err(BTreeError::Inconsistent(format!("{base} is not internal")));
        }
        Ok(NodeRef::new(&page).entries())
    }

    /// Leaf page ids in key order.
    pub fn leaves_in_key_order(&self) -> BTreeResult<Vec<PageId>> {
        let (root, height) = self.anchor()?;
        if height == 0 {
            return Ok(vec![root]);
        }
        let mut out = Vec::new();
        self.collect_level(root, height, 0, &mut out)?;
        Ok(out)
    }

    /// Every page reachable from the meta page (meta, internal, leaves).
    /// Recovery rebuilds the free-space map from this set.
    pub fn reachable_pages(&self) -> BTreeResult<Vec<PageId>> {
        let (root, height) = self.anchor()?;
        let mut out = vec![self.meta_id];
        for lvl in (0..=height).rev() {
            let mut pages = Vec::new();
            self.collect_level(root, height, lvl, &mut pages)?;
            out.extend(pages);
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Physical shape snapshot.
    pub fn stats(&self) -> BTreeResult<TreeStats> {
        let (root, height) = self.anchor()?;
        let leaves = self.leaves_in_key_order()?;
        let mut records = 0u64;
        let mut fill_sum = 0.0;
        for &l in &leaves {
            let g = self.pool.fetch(l)?;
            let page = g.read();
            let r = LeafRef::new(&page);
            records += r.count() as u64;
            fill_sum += r.fill_fraction();
        }
        let mut internal = 0usize;
        for lvl in 1..=height {
            let mut pages = Vec::new();
            self.collect_level(root, height, lvl, &mut pages)?;
            internal += pages.len();
        }
        Ok(TreeStats {
            height,
            leaf_pages: leaves.len(),
            internal_pages: internal,
            records,
            avg_leaf_fill: if leaves.is_empty() {
                0.0
            } else {
                fill_sum / leaves.len() as f64
            },
            leaves_in_key_order: leaves,
        })
    }

    /// Every record in key order (test/diagnostic helper).
    pub fn collect_all(&self) -> BTreeResult<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::new();
        for leaf in self.leaves_in_key_order()? {
            let g = self.pool.fetch(leaf)?;
            let page = g.read();
            out.extend(LeafRef::new(&page).records());
        }
        Ok(out)
    }

    /// Full structural validation. Returns the record count.
    ///
    /// Checks: page types per level, per-page invariants, global key order
    /// across the in-order leaf walk, and (when side pointers are on) that
    /// the chain visits exactly the in-order leaves.
    pub fn validate(&self) -> BTreeResult<u64> {
        let (root, height) = self.anchor()?;
        // Per-level page checks.
        for lvl in (0..=height).rev() {
            let mut pages = Vec::new();
            self.collect_level(root, height, lvl, &mut pages)?;
            for p in pages {
                let g = self.pool.fetch(p)?;
                let mut page = g.write();
                if lvl == 0 {
                    if page.page_type() != Some(PageType::Leaf) {
                        return Err(BTreeError::Inconsistent(format!("{p} should be a leaf")));
                    }
                    LeafView::new(&mut page).validate()?;
                } else {
                    if page.page_type() != Some(PageType::Internal) {
                        return Err(BTreeError::Inconsistent(format!("{p} should be internal")));
                    }
                    if page.level() != lvl {
                        return Err(BTreeError::Inconsistent(format!(
                            "{p} level byte {} but depth says {lvl}",
                            page.level()
                        )));
                    }
                    NodeView::new(&mut page).validate()?;
                }
            }
        }
        // Global key order over the in-order leaf walk.
        let leaves = self.leaves_in_key_order()?;
        let mut prev: Option<u64> = None;
        let mut records = 0u64;
        for &l in &leaves {
            let g = self.pool.fetch(l)?;
            let page = g.read();
            for k in LeafRef::new(&page).keys() {
                if let Some(p) = prev {
                    if k <= p {
                        return Err(BTreeError::Inconsistent(format!(
                            "global key order broken: {k} after {p} (leaf {l})"
                        )));
                    }
                }
                prev = Some(k);
                records += 1;
            }
        }
        // Side-pointer chain must equal the in-order walk.
        if self.side != SidePointerMode::None && !leaves.is_empty() {
            let mut chain = Vec::with_capacity(leaves.len());
            let mut cur = leaves[0];
            while cur.is_valid() && chain.len() <= leaves.len() {
                chain.push(cur);
                let g = self.pool.fetch(cur)?;
                cur = g.read().right_sibling();
            }
            if chain != leaves {
                return Err(BTreeError::Inconsistent(format!(
                    "side chain {chain:?} != in-order leaves {leaves:?}"
                )));
            }
            if self.side == SidePointerMode::TwoWay {
                for w in leaves.windows(2) {
                    let g = self.pool.fetch(w[1])?;
                    let left = g.read().left_sibling();
                    if left != w[0] {
                        return Err(BTreeError::Inconsistent(format!(
                            "left pointer of {} is {left}, expected {}",
                            w[1], w[0]
                        )));
                    }
                }
            }
        }
        Ok(records)
    }

    /// Replace the tree contents by bulk-loading `records` (sorted by key,
    /// unique) at the given leaf/node fill fractions (\[Sal88\] ch. 5 §5).
    /// An offline operation: pages are written directly and flushed.
    pub fn bulk_load(
        &self,
        records: &[(u64, Vec<u8>)],
        leaf_fill: f64,
        node_fill: f64,
    ) -> BTreeResult<()> {
        let _g = self.smo_guard();
        // Free the old tree.
        for p in self.reachable_pages()? {
            if p != self.meta_id {
                self.pool.discard(p);
                self.fsm.free(p);
            }
        }
        let built = crate::builder::bulk_build(
            &self.pool, &self.fsm, records, leaf_fill, node_fill, self.side,
        )?;
        self.set_anchor(built.root, built.height, Lsn::ZERO)?;
        self.pool.flush_all()?;
        Ok(())
    }
}

enum InsertBlock {
    Duplicate,
    Full,
}

#[cfg(test)]
mod tests {
    use super::*;
    use obr_storage::{DiskManager, InMemoryDisk};

    fn setup(pages: u32) -> BTree {
        let disk = Arc::new(InMemoryDisk::new(pages));
        let pool = Arc::new(BufferPool::new(
            disk as Arc<dyn DiskManager>,
            pages as usize,
        ));
        let fsm = Arc::new(FreeSpaceMap::new_all_free(pages));
        let log = Arc::new(LogManager::new());
        BTree::create(pool, fsm, log, SidePointerMode::TwoWay).unwrap()
    }

    fn val(k: u64, len: usize) -> Vec<u8> {
        let mut v = k.to_le_bytes().to_vec();
        v.resize(len, 0xAB);
        v
    }

    #[test]
    fn insert_search_small() {
        let t = setup(64);
        for k in [5u64, 1, 9, 3] {
            t.insert(TxnId(1), Lsn::ZERO, k, &val(k, 16)).unwrap();
        }
        assert_eq!(t.search(3).unwrap().unwrap(), val(3, 16));
        assert_eq!(t.search(4).unwrap(), None);
        assert_eq!(t.validate().unwrap(), 4);
    }

    #[test]
    fn duplicate_insert_errors() {
        let t = setup(64);
        t.insert(TxnId(1), Lsn::ZERO, 1, b"a").unwrap();
        assert!(matches!(
            t.insert(TxnId(1), Lsn::ZERO, 1, b"b"),
            Err(BTreeError::KeyExists(1))
        ));
    }

    #[test]
    fn splits_grow_the_tree() {
        let t = setup(256);
        let n = 500u64;
        for k in 0..n {
            t.insert(TxnId(1), Lsn::ZERO, k, &val(k, 64)).unwrap();
        }
        let stats = t.stats().unwrap();
        assert!(stats.height >= 1, "tree should have split");
        assert_eq!(stats.records, n);
        assert_eq!(t.validate().unwrap(), n);
        for k in (0..n).step_by(37) {
            assert_eq!(t.search(k).unwrap().unwrap(), val(k, 64));
        }
    }

    #[test]
    fn descending_inserts_also_work() {
        let t = setup(256);
        for k in (0..400u64).rev() {
            t.insert(TxnId(1), Lsn::ZERO, k, &val(k, 64)).unwrap();
        }
        assert_eq!(t.validate().unwrap(), 400);
        assert_eq!(t.search(0).unwrap().unwrap(), val(0, 64));
    }

    #[test]
    fn delete_and_free_at_empty() {
        let t = setup(256);
        for k in 0..300u64 {
            t.insert(TxnId(1), Lsn::ZERO, k, &val(k, 64)).unwrap();
        }
        let before = t.stats().unwrap();
        assert!(before.leaf_pages > 2);
        // Delete everything: free-at-empty must deallocate leaves.
        for k in 0..300u64 {
            t.delete(TxnId(1), Lsn::ZERO, k).unwrap();
        }
        let after = t.stats().unwrap();
        assert_eq!(after.records, 0);
        assert!(
            after.leaf_pages < before.leaf_pages,
            "emptied leaves must be deallocated ({} -> {})",
            before.leaf_pages,
            after.leaf_pages
        );
        t.validate().unwrap();
        assert!(matches!(
            t.delete(TxnId(1), Lsn::ZERO, 0),
            Err(BTreeError::KeyNotFound(0))
        ));
    }

    #[test]
    fn sparse_leaves_are_never_merged() {
        // Free-at-empty [JS93]: delete most but not all records of each
        // leaf; page count must not shrink.
        let t = setup(256);
        for k in 0..300u64 {
            t.insert(TxnId(1), Lsn::ZERO, k, &val(k, 64)).unwrap();
        }
        let before = t.stats().unwrap();
        for k in 0..300u64 {
            if k % 5 != 0 {
                t.delete(TxnId(1), Lsn::ZERO, k).unwrap();
            }
        }
        let after = t.stats().unwrap();
        assert_eq!(after.leaf_pages, before.leaf_pages);
        assert!(after.avg_leaf_fill < before.avg_leaf_fill / 2.0);
        t.validate().unwrap();
    }

    #[test]
    fn range_scan_via_side_pointers() {
        let t = setup(256);
        for k in 0..300u64 {
            t.insert(TxnId(1), Lsn::ZERO, k * 2, &val(k, 64)).unwrap();
        }
        let r = t.range_scan(100, 140).unwrap();
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (50..=70).map(|k| k * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan_without_side_pointers() {
        let disk = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new(disk as Arc<dyn DiskManager>, 256));
        let fsm = Arc::new(FreeSpaceMap::new_all_free(256));
        let log = Arc::new(LogManager::new());
        let t = BTree::create(pool, fsm, log, SidePointerMode::None).unwrap();
        for k in 0..300u64 {
            t.insert(TxnId(1), Lsn::ZERO, k, &val(k, 64)).unwrap();
        }
        let r = t.range_scan(10, 20).unwrap();
        assert_eq!(r.len(), 11);
        t.validate().unwrap();
    }

    #[test]
    fn base_pages_and_entries_cover_all_leaves() {
        let t = setup(512);
        for k in 0..2000u64 {
            t.insert(TxnId(1), Lsn::ZERO, k, &val(k, 64)).unwrap();
        }
        let bases = t.base_pages().unwrap();
        assert!(!bases.is_empty());
        let mut leaf_count = 0;
        let mut prev_key: Option<u64> = None;
        for b in &bases {
            for (k, _) in t.base_entries(*b).unwrap() {
                if let Some(p) = prev_key {
                    assert!(k > p, "base entries must ascend across base pages");
                }
                prev_key = Some(k);
                leaf_count += 1;
            }
        }
        assert_eq!(leaf_count, t.stats().unwrap().leaf_pages);
    }

    #[test]
    fn bulk_load_builds_a_valid_tree_at_fill() {
        let t = setup(1024);
        let records: Vec<(u64, Vec<u8>)> = (0..3000u64).map(|k| (k, val(k, 64))).collect();
        t.bulk_load(&records, 0.9, 0.9).unwrap();
        assert_eq!(t.validate().unwrap(), 3000);
        let s = t.stats().unwrap();
        assert!(
            (s.avg_leaf_fill - 0.9).abs() < 0.1,
            "avg fill {} should be near 0.9",
            s.avg_leaf_fill
        );
        // Bulk-loaded leaves are contiguous on disk.
        assert_eq!(s.leaf_discontinuities(), 0);
        assert_eq!(t.search(1234).unwrap().unwrap(), val(1234, 64));
    }

    #[test]
    fn bulk_load_low_fill_makes_sparse_tree() {
        let t = setup(2048);
        let records: Vec<(u64, Vec<u8>)> = (0..2000u64).map(|k| (k, val(k, 64))).collect();
        t.bulk_load(&records, 0.3, 0.9).unwrap();
        let s = t.stats().unwrap();
        assert!(s.avg_leaf_fill < 0.4);
        assert_eq!(t.validate().unwrap(), 2000);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let t = Arc::new(setup(2048));
        for k in 0..500u64 {
            t.insert(TxnId(1), Lsn::ZERO, k * 4, &val(k, 32)).unwrap();
        }
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let k = (tid + 1) * 10_000 + i;
                        t.insert(TxnId(tid), Lsn::ZERO, k, &val(k, 32)).unwrap();
                    }
                });
            }
            for _ in 0..4 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..400u64 {
                        let _ = t.search((i * 7) % 2000).unwrap();
                    }
                });
            }
        });
        assert_eq!(t.validate().unwrap(), 500 + 4 * 200);
    }

    #[test]
    fn reachable_pages_include_meta_and_all_levels() {
        let t = setup(512);
        for k in 0..1000u64 {
            t.insert(TxnId(1), Lsn::ZERO, k, &val(k, 64)).unwrap();
        }
        let s = t.stats().unwrap();
        let reach = t.reachable_pages().unwrap();
        assert_eq!(reach.len(), 1 + s.leaf_pages + s.internal_pages);
        assert!(reach.contains(&t.meta_id()));
    }

    #[test]
    fn anchor_and_meta_flags_round_trip() {
        let t = setup(64);
        assert_eq!(t.generation().unwrap(), 0);
        t.set_generation(5).unwrap();
        assert_eq!(t.generation().unwrap(), 5);
        assert!(!t.reorg_bit().unwrap());
        t.set_reorg_bit(true).unwrap();
        assert!(t.reorg_bit().unwrap());
    }
}
