//! Error types for tree operations.

use std::fmt;

use obr_storage::StorageError;

/// Errors from B+-tree operations.
#[derive(Debug)]
pub enum BTreeError {
    /// An underlying storage error.
    Storage(StorageError),
    /// Insert of a key that already exists (the tree is a primary index).
    KeyExists(u64),
    /// Delete/update of a key that does not exist.
    KeyNotFound(u64),
    /// A single record is too large to ever fit a page.
    RecordTooLarge(usize),
    /// The tree image on disk failed an invariant check.
    Inconsistent(String),
}

impl fmt::Display for BTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BTreeError::Storage(e) => write!(f, "storage: {e}"),
            BTreeError::KeyExists(k) => write!(f, "key {k} already exists"),
            BTreeError::KeyNotFound(k) => write!(f, "key {k} not found"),
            BTreeError::RecordTooLarge(n) => write!(f, "record of {n} bytes cannot fit a page"),
            BTreeError::Inconsistent(msg) => write!(f, "tree inconsistent: {msg}"),
        }
    }
}

impl std::error::Error for BTreeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BTreeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for BTreeError {
    fn from(e: StorageError) -> Self {
        BTreeError::Storage(e)
    }
}

/// Convenience alias for tree operations.
pub type BTreeResult<T> = Result<T, BTreeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_key() {
        assert!(BTreeError::KeyExists(12).to_string().contains("12"));
        assert!(BTreeError::KeyNotFound(9).to_string().contains("9"));
    }

    #[test]
    fn storage_error_is_wrapped_with_source() {
        let e = BTreeError::from(StorageError::NoFreePage);
        assert!(e.to_string().contains("no free page"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
