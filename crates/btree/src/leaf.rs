//! Typed view over a leaf page.
//!
//! Records are stored back-to-back in key order in the page body:
//! `[key: u64][len: u16][value bytes]`. The slot count and free pointer live
//! in the page header. Packing in key order keeps the view simple and makes
//! the *fill fraction* — the quantity the whole paper is about — a direct
//! function of the free pointer.

use obr_storage::page::HEADER_SIZE;
use obr_storage::{Page, PageType, StorageError, StorageResult, PAGE_SIZE};

/// Bytes of body available for records in a leaf.
pub const LEAF_BODY: usize = PAGE_SIZE - HEADER_SIZE;

const REC_OVERHEAD: usize = 8 + 2;

/// Largest value a single record may carry.
pub const MAX_VALUE: usize = LEAF_BODY - REC_OVERHEAD;

/// A read-only typed view over a leaf page (usable under a shared latch).
#[derive(Clone, Copy)]
pub struct LeafRef<'a> {
    page: &'a Page,
}

impl<'a> LeafRef<'a> {
    /// Wrap a leaf page for reading.
    pub fn new(page: &'a Page) -> LeafRef<'a> {
        debug_assert_eq!(page.page_type(), Some(PageType::Leaf), "not a leaf page");
        LeafRef { page }
    }

    /// Number of records.
    pub fn count(&self) -> usize {
        self.page.slot_count() as usize
    }

    /// True when the leaf holds no records.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Bytes of body in use.
    pub fn used_bytes(&self) -> usize {
        self.page.free_ptr() as usize - HEADER_SIZE
    }

    /// Fraction of the body in use (the page fill factor `f`).
    pub fn fill_fraction(&self) -> f64 {
        self.used_bytes() as f64 / LEAF_BODY as f64
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> usize {
        LEAF_BODY - self.used_bytes()
    }

    fn walk(&self) -> Walk<'a> {
        Walk {
            bytes: self.page.bytes(),
            off: HEADER_SIZE,
            remaining: self.count(),
        }
    }

    /// All records in key order.
    pub fn records(&self) -> Vec<(u64, Vec<u8>)> {
        self.walk().map(|(_, k, v)| (k, v.to_vec())).collect()
    }

    /// All keys in order.
    pub fn keys(&self) -> Vec<u64> {
        self.walk().map(|(_, k, _)| k).collect()
    }

    /// Smallest key, if any.
    pub fn first_key(&self) -> Option<u64> {
        self.walk().next().map(|(_, k, _)| k)
    }

    /// Largest key, if any.
    pub fn last_key(&self) -> Option<u64> {
        self.walk().last().map(|(_, k, _)| k)
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        for (_, k, v) in self.walk() {
            if k == key {
                return Some(v.to_vec());
            }
            if k > key {
                return None;
            }
        }
        None
    }

    /// True when the key is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Records with keys in `[lo, hi]`.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
        self.walk()
            .filter(|(_, k, _)| *k >= lo && *k <= hi)
            .map(|(_, k, v)| (k, v.to_vec()))
            .collect()
    }
}

/// A typed (read/write) view over a leaf page.
///
/// The view borrows the [`Page`] mutably; read-only helpers take `&self`.
pub struct LeafView<'a> {
    page: &'a mut Page,
}

impl<'a> LeafView<'a> {
    /// Wrap an existing leaf page. Debug-asserts the type tag.
    pub fn new(page: &'a mut Page) -> LeafView<'a> {
        debug_assert_eq!(page.page_type(), Some(PageType::Leaf), "not a leaf page");
        LeafView { page }
    }

    /// Format `page` as an empty leaf and wrap it.
    // protocol: page-mutation
    pub fn init(page: &'a mut Page) -> LeafView<'a> {
        page.format(PageType::Leaf, 0);
        LeafView { page }
    }

    /// The underlying page.
    pub fn page(&self) -> &Page {
        self.page
    }

    /// The underlying page, mutably.
    pub fn page_mut(&mut self) -> &mut Page {
        self.page
    }

    /// Number of records.
    pub fn count(&self) -> usize {
        self.page.slot_count() as usize
    }

    /// True when the leaf holds no records.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Bytes of body in use.
    pub fn used_bytes(&self) -> usize {
        self.page.free_ptr() as usize - HEADER_SIZE
    }

    /// Fraction of the body in use (the page fill factor `f`).
    pub fn fill_fraction(&self) -> f64 {
        self.used_bytes() as f64 / LEAF_BODY as f64
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> usize {
        LEAF_BODY - self.used_bytes()
    }

    /// Walk the records, yielding `(offset, key, value_range)`.
    fn walk(&self) -> Walk<'_> {
        Walk {
            bytes: self.page.bytes(),
            off: HEADER_SIZE,
            remaining: self.count(),
        }
    }

    /// All records in key order.
    pub fn records(&self) -> Vec<(u64, Vec<u8>)> {
        self.walk().map(|(_, k, v)| (k, v.to_vec())).collect()
    }

    /// All keys in order.
    pub fn keys(&self) -> Vec<u64> {
        self.walk().map(|(_, k, _)| k).collect()
    }

    /// Smallest key, if any.
    pub fn first_key(&self) -> Option<u64> {
        self.walk().next().map(|(_, k, _)| k)
    }

    /// Largest key, if any.
    pub fn last_key(&self) -> Option<u64> {
        self.walk().last().map(|(_, k, _)| k)
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        for (_, k, v) in self.walk() {
            if k == key {
                return Some(v.to_vec());
            }
            if k > key {
                return None;
            }
        }
        None
    }

    /// True when the key is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Would a record of `value_len` bytes fit?
    pub fn fits(&self, value_len: usize) -> bool {
        REC_OVERHEAD + value_len <= self.free_bytes()
    }

    /// Insert a record, keeping key order. Fails on duplicates and on
    /// overflow (callers split on [`StorageError::PageFull`]).
    // protocol: page-mutation
    pub fn insert(&mut self, key: u64, value: &[u8]) -> StorageResult<()> {
        if value.len() > MAX_VALUE {
            return Err(StorageError::Corrupt(format!(
                "value of {} bytes exceeds MAX_VALUE {MAX_VALUE}",
                value.len()
            )));
        }
        let need = REC_OVERHEAD + value.len();
        if need > self.free_bytes() {
            return Err(StorageError::PageFull {
                page: obr_storage::PageId::INVALID,
                needed: need,
                free: self.free_bytes(),
            });
        }
        // Find the insertion offset.
        let mut ins = self.page.free_ptr() as usize;
        for (off, k, _) in self.walk() {
            if k == key {
                return Err(StorageError::Corrupt(format!("duplicate key {key}")));
            }
            if k > key {
                ins = off;
                break;
            }
        }
        let end = self.page.free_ptr() as usize;
        let bytes = self.page.bytes_mut();
        // Shift the tail right.
        bytes.copy_within(ins..end, ins + need);
        bytes[ins..ins + 8].copy_from_slice(&key.to_le_bytes());
        bytes[ins + 8..ins + 10].copy_from_slice(&(value.len() as u16).to_le_bytes());
        bytes[ins + 10..ins + 10 + value.len()].copy_from_slice(value);
        self.page.set_free_ptr((end + need) as u16);
        self.page.set_slot_count(self.page.slot_count() + 1);
        if self.page.low_mark() == u64::MAX || key < self.page.low_mark() {
            // The low mark is "the smallest key on this page when the page
            // was first created"; for pages filled incrementally we keep it
            // as the smallest key ever seen, which preserves its use as a
            // lower bound.
            self.page.set_low_mark(key);
        }
        Ok(())
    }

    /// Insert, replacing any existing value. Returns the old value.
    // protocol: page-mutation
    pub fn upsert(&mut self, key: u64, value: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        let old = self.remove(key);
        self.insert(key, value)?;
        Ok(old)
    }

    /// Remove a record, returning its value.
    // protocol: page-mutation
    pub fn remove(&mut self, key: u64) -> Option<Vec<u8>> {
        let mut found: Option<(usize, usize, Vec<u8>)> = None;
        for (off, k, v) in self.walk() {
            if k == key {
                found = Some((off, REC_OVERHEAD + v.len(), v.to_vec()));
                break;
            }
            if k > key {
                return None;
            }
        }
        let (off, len, value) = found?;
        let end = self.page.free_ptr() as usize;
        self.page.bytes_mut().copy_within(off + len..end, off);
        self.page.set_free_ptr((end - len) as u16);
        self.page.set_slot_count(self.page.slot_count() - 1);
        Some(value)
    }

    /// Remove and return every record, leaving the leaf empty (used by
    /// compaction MOVEs).
    // protocol: page-mutation
    pub fn take_all(&mut self) -> Vec<(u64, Vec<u8>)> {
        let recs = self.records();
        self.page.set_free_ptr(HEADER_SIZE as u16);
        self.page.set_slot_count(0);
        recs
    }

    /// Append records in bulk. They must all be greater than the current
    /// last key and sorted; fails with `PageFull` when they do not fit.
    // protocol: page-mutation
    pub fn extend(&mut self, records: &[(u64, Vec<u8>)]) -> StorageResult<()> {
        let need: usize = records.iter().map(|(_, v)| REC_OVERHEAD + v.len()).sum();
        if need > self.free_bytes() {
            return Err(StorageError::PageFull {
                page: obr_storage::PageId::INVALID,
                needed: need,
                free: self.free_bytes(),
            });
        }
        if let (Some(last), Some((first_new, _))) = (self.last_key(), records.first()) {
            if *first_new <= last {
                return Err(StorageError::Corrupt(format!(
                    "extend would break key order: {first_new} <= {last}"
                )));
            }
        }
        let mut off = self.page.free_ptr() as usize;
        let mut prev: Option<u64> = None;
        for (k, v) in records {
            if let Some(p) = prev {
                if *k <= p {
                    return Err(StorageError::Corrupt(format!(
                        "extend batch not sorted: {k} after {p}"
                    )));
                }
            }
            prev = Some(*k);
            let bytes = self.page.bytes_mut();
            bytes[off..off + 8].copy_from_slice(&k.to_le_bytes());
            bytes[off + 8..off + 10].copy_from_slice(&(v.len() as u16).to_le_bytes());
            bytes[off + 10..off + 10 + v.len()].copy_from_slice(v);
            off += REC_OVERHEAD + v.len();
            self.page.set_slot_count(self.page.slot_count() + 1);
            if self.page.low_mark() == u64::MAX || *k < self.page.low_mark() {
                self.page.set_low_mark(*k);
            }
        }
        self.page.set_free_ptr(off as u16);
        Ok(())
    }

    /// Records with keys in `[lo, hi]`.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
        self.walk()
            .filter(|(_, k, _)| *k >= lo && *k <= hi)
            .map(|(_, k, v)| (k, v.to_vec()))
            .collect()
    }

    /// Structural self-check: sorted keys, header consistent with body.
    pub fn validate(&self) -> StorageResult<()> {
        let mut prev: Option<u64> = None;
        let mut n = 0usize;
        let mut end = HEADER_SIZE;
        for (off, k, v) in self.walk() {
            if let Some(p) = prev {
                if k <= p {
                    return Err(StorageError::Corrupt(format!(
                        "leaf keys out of order: {k} after {p}"
                    )));
                }
            }
            prev = Some(k);
            n += 1;
            end = off + REC_OVERHEAD + v.len();
        }
        if n != self.count() {
            return Err(StorageError::Corrupt(format!(
                "slot count {} but walked {n} records",
                self.count()
            )));
        }
        if end != self.page.free_ptr() as usize {
            return Err(StorageError::Corrupt(format!(
                "free pointer {} but records end at {end}",
                self.page.free_ptr()
            )));
        }
        Ok(())
    }
}

struct Walk<'a> {
    bytes: &'a [u8],
    off: usize,
    remaining: usize,
}

impl<'a> Iterator for Walk<'a> {
    type Item = (usize, u64, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let off = self.off;
        let key = u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap());
        let len = u16::from_le_bytes(self.bytes[off + 8..off + 10].try_into().unwrap()) as usize;
        let val = &self.bytes[off + 10..off + 10 + len];
        self.off = off + REC_OVERHEAD + len;
        Some((off, key, val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leaf() -> Page {
        let mut p = Page::new();
        p.format(PageType::Leaf, 0);
        p
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut p = leaf();
        let mut v = LeafView::new(&mut p);
        v.insert(5, b"five").unwrap();
        v.insert(1, b"one").unwrap();
        v.insert(3, b"three").unwrap();
        assert_eq!(v.keys(), vec![1, 3, 5]);
        assert_eq!(v.get(3).unwrap(), b"three");
        assert_eq!(v.get(4), None);
        assert_eq!(v.remove(3).unwrap(), b"three");
        assert_eq!(v.keys(), vec![1, 5]);
        assert_eq!(v.remove(3), None);
        v.validate().unwrap();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut p = leaf();
        let mut v = LeafView::new(&mut p);
        v.insert(1, b"a").unwrap();
        assert!(v.insert(1, b"b").is_err());
        assert_eq!(v.get(1).unwrap(), b"a");
    }

    #[test]
    fn upsert_replaces() {
        let mut p = leaf();
        let mut v = LeafView::new(&mut p);
        assert_eq!(v.upsert(1, b"a").unwrap(), None);
        assert_eq!(v.upsert(1, b"bb").unwrap().unwrap(), b"a");
        assert_eq!(v.get(1).unwrap(), b"bb");
        assert_eq!(v.count(), 1);
    }

    #[test]
    fn page_full_is_reported_not_corrupted() {
        let mut p = leaf();
        let mut v = LeafView::new(&mut p);
        let big = vec![0u8; 1000];
        let mut n = 0u64;
        loop {
            match v.insert(n, &big) {
                Ok(()) => n += 1,
                Err(StorageError::PageFull { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(n, 4); // 4 * 1010 = 4040 <= 4064, 5th doesn't fit
        v.validate().unwrap();
        assert!(v.fill_fraction() > 0.9);
    }

    #[test]
    fn oversized_value_rejected() {
        let mut p = leaf();
        let mut v = LeafView::new(&mut p);
        assert!(v.insert(1, &vec![0u8; MAX_VALUE + 1]).is_err());
        assert!(v.insert(1, &vec![0u8; MAX_VALUE]).is_ok());
    }

    #[test]
    fn take_all_empties_the_leaf() {
        let mut p = leaf();
        let mut v = LeafView::new(&mut p);
        v.insert(2, b"b").unwrap();
        v.insert(1, b"a").unwrap();
        let recs = v.take_all();
        assert_eq!(recs, vec![(1, b"a".to_vec()), (2, b"b".to_vec())]);
        assert!(v.is_empty());
        assert_eq!(v.used_bytes(), 0);
        v.validate().unwrap();
    }

    #[test]
    fn extend_appends_sorted_batch() {
        let mut p = leaf();
        let mut v = LeafView::new(&mut p);
        v.insert(1, b"a").unwrap();
        v.extend(&[(5, b"e".to_vec()), (7, b"g".to_vec())]).unwrap();
        assert_eq!(v.keys(), vec![1, 5, 7]);
        v.validate().unwrap();
        // Out-of-order extends are rejected.
        assert!(v.extend(&[(6, vec![])]).is_err());
        assert!(v.extend(&[(9, vec![]), (8, vec![])]).is_err());
    }

    #[test]
    fn range_filters_inclusive() {
        let mut p = leaf();
        let mut v = LeafView::new(&mut p);
        for k in [1u64, 3, 5, 7] {
            v.insert(k, &k.to_le_bytes()).unwrap();
        }
        let r = v.range(3, 5);
        assert_eq!(r.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn low_mark_tracks_smallest_inserted_key() {
        let mut p = leaf();
        let mut v = LeafView::new(&mut p);
        assert_eq!(v.page().low_mark(), u64::MAX);
        v.insert(10, b"").unwrap();
        assert_eq!(v.page().low_mark(), 10);
        v.insert(3, b"").unwrap();
        assert_eq!(v.page().low_mark(), 3);
        v.remove(3);
        // Low mark is a creation-time lower bound; removal does not raise it.
        assert_eq!(v.page().low_mark(), 3);
    }

    #[test]
    fn fill_fraction_reflects_usage() {
        let mut p = leaf();
        let mut v = LeafView::new(&mut p);
        assert_eq!(v.fill_fraction(), 0.0);
        v.insert(1, &vec![0u8; 2022]).unwrap(); // 2032 bytes = half of 4064
        assert!((v.fill_fraction() - 0.5).abs() < 0.01);
    }

    proptest! {
        #[test]
        fn prop_leaf_behaves_like_btreemap(ops in prop::collection::vec(
            (any::<bool>(), 0u64..64, prop::collection::vec(any::<u8>(), 0..32)), 0..200)) {
            let mut p = leaf();
            let mut v = LeafView::new(&mut p);
            let mut model = std::collections::BTreeMap::new();
            for (is_insert, key, value) in ops {
                if is_insert {
                    match v.insert(key, &value) {
                        Ok(()) => { prop_assert!(model.insert(key, value).is_none()); }
                        Err(StorageError::PageFull { .. }) => {}
                        Err(_) => { prop_assert!(model.contains_key(&key)); }
                    }
                } else {
                    prop_assert_eq!(v.remove(key), model.remove(&key));
                }
                v.validate().unwrap();
            }
            let got: Vec<(u64, Vec<u8>)> = v.records();
            let want: Vec<(u64, Vec<u8>)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
