//! The tree metadata page — the "special place on the disk" of §7.4 that
//! records where the root is. The switch to the new B+-tree is the atomic
//! update of this page.

use obr_storage::page::HEADER_SIZE;
use obr_storage::{Page, PageId, PageType, StorageError, StorageResult};

const MAGIC: u32 = 0x0B72_EE01;

const OFF_MAGIC: usize = HEADER_SIZE;
const OFF_ROOT: usize = HEADER_SIZE + 4;
const OFF_HEIGHT: usize = HEADER_SIZE + 8;
const OFF_GENERATION: usize = HEADER_SIZE + 9;
const OFF_REORG_BIT: usize = HEADER_SIZE + 13;

/// Read-only view over the metadata page (usable under a shared latch).
#[derive(Clone, Copy)]
pub struct MetaRef<'a> {
    page: &'a Page,
}

impl<'a> MetaRef<'a> {
    /// Wrap an existing meta page, checking type and magic.
    pub fn new(page: &'a Page) -> StorageResult<MetaRef<'a>> {
        if page.page_type() != Some(PageType::Meta) {
            return Err(StorageError::Corrupt("not a meta page".into()));
        }
        let r = MetaRef { page };
        if r.read_u32(OFF_MAGIC) != MAGIC {
            return Err(StorageError::Corrupt("bad meta page magic".into()));
        }
        Ok(r)
    }

    fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.page.bytes()[off..off + 4].try_into().unwrap())
    }

    /// Root page of the tree.
    pub fn root(&self) -> PageId {
        PageId(self.read_u32(OFF_ROOT))
    }

    /// Height: 0 when the root is a leaf.
    pub fn height(&self) -> u8 {
        self.page.bytes()[OFF_HEIGHT]
    }

    /// Tree generation (lock name).
    pub fn generation(&self) -> u32 {
        self.read_u32(OFF_GENERATION)
    }

    /// The §7.2 reorganization bit.
    pub fn reorg_bit(&self) -> bool {
        self.page.bytes()[OFF_REORG_BIT] == 1
    }
}

/// Typed view over the metadata page.
pub struct MetaView<'a> {
    page: &'a mut Page,
}

impl<'a> MetaView<'a> {
    /// Wrap an existing meta page, checking the magic number.
    pub fn new(page: &'a mut Page) -> StorageResult<MetaView<'a>> {
        if page.page_type() != Some(PageType::Meta) {
            return Err(StorageError::Corrupt("not a meta page".into()));
        }
        let view = MetaView { page };
        if view.read_u32(OFF_MAGIC) != MAGIC {
            return Err(StorageError::Corrupt("bad meta page magic".into()));
        }
        Ok(view)
    }

    /// Format `page` as a fresh meta page.
    pub fn init(page: &'a mut Page) -> MetaView<'a> {
        page.format(PageType::Meta, 0);
        let mut view = MetaView { page };
        view.write_u32(OFF_MAGIC, MAGIC);
        view.set_root(PageId::INVALID);
        view.set_height(0);
        view.set_generation(0);
        view.set_reorg_bit(false);
        view
    }

    fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.page.bytes()[off..off + 4].try_into().unwrap())
    }

    fn write_u32(&mut self, off: usize, v: u32) {
        self.page.bytes_mut()[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Root page of the tree.
    pub fn root(&self) -> PageId {
        PageId(self.read_u32(OFF_ROOT))
    }

    /// Point the tree at a new root (the switch of §7.4).
    pub fn set_root(&mut self, root: PageId) {
        self.write_u32(OFF_ROOT, root.0);
    }

    /// Height: 0 when the root is a leaf, else the root's level.
    pub fn height(&self) -> u8 {
        self.page.bytes()[OFF_HEIGHT]
    }

    /// Set the height.
    pub fn set_height(&mut self, h: u8) {
        self.page.bytes_mut()[OFF_HEIGHT] = h;
    }

    /// Tree generation — doubles as the tree's lock name, which §7.4
    /// requires to be distinct between the old and the new tree.
    pub fn generation(&self) -> u32 {
        self.read_u32(OFF_GENERATION)
    }

    /// Bump/set the generation.
    pub fn set_generation(&mut self, g: u32) {
        self.write_u32(OFF_GENERATION, g);
    }

    /// The reorganization bit of §7.2: set while internal-page
    /// reorganization is running, so updaters know to consult the side file.
    pub fn reorg_bit(&self) -> bool {
        self.page.bytes()[OFF_REORG_BIT] == 1
    }

    /// Set/clear the reorganization bit.
    pub fn set_reorg_bit(&mut self, on: bool) {
        self.page.bytes_mut()[OFF_REORG_BIT] = u8::from(on);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_and_reopen() {
        let mut p = Page::new();
        {
            let mut m = MetaView::init(&mut p);
            m.set_root(PageId(7));
            m.set_height(2);
            m.set_generation(3);
            m.set_reorg_bit(true);
        }
        let m = MetaView::new(&mut p).unwrap();
        assert_eq!(m.root(), PageId(7));
        assert_eq!(m.height(), 2);
        assert_eq!(m.generation(), 3);
        assert!(m.reorg_bit());
    }

    #[test]
    fn fresh_meta_has_no_root() {
        let mut p = Page::new();
        let m = MetaView::init(&mut p);
        assert_eq!(m.root(), PageId::INVALID);
        assert_eq!(m.height(), 0);
        assert!(!m.reorg_bit());
    }

    #[test]
    fn wrong_type_or_magic_rejected() {
        let mut p = Page::new();
        assert!(MetaView::new(&mut p).is_err());
        p.format(PageType::Meta, 0);
        // Right type, wrong magic.
        assert!(MetaView::new(&mut p).is_err());
    }
}
