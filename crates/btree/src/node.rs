//! Typed view over an internal page.
//!
//! The paper's tree variant: "a B+-tree internal node with `n` keys has `n`
//! children". Each 12-byte entry is `[low_key: u64][child: u32]`, sorted by
//! key. Routing for key `k` picks the child of the greatest entry with
//! `low_key <= k`, clamping to the first entry when `k` is below every low
//! key (the leftmost subtree covers -inf by convention).
//!
//! Level-1 internal pages are the *base pages* of the paper — the unit the
//! reorganizer's R/X base-page locks protect.

use obr_storage::page::HEADER_SIZE;
use obr_storage::{Page, PageId, PageType, StorageError, StorageResult, PAGE_SIZE};

/// Bytes per entry.
pub const ENTRY_SIZE: usize = 12;

/// Maximum number of entries an internal page can hold.
pub const NODE_CAPACITY: usize = (PAGE_SIZE - HEADER_SIZE) / ENTRY_SIZE;

/// A read-only typed view over an internal page (usable under a shared
/// latch).
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    page: &'a Page,
}

impl<'a> NodeRef<'a> {
    /// Wrap an internal page for reading.
    pub fn new(page: &'a Page) -> NodeRef<'a> {
        debug_assert_eq!(
            page.page_type(),
            Some(PageType::Internal),
            "not an internal page"
        );
        NodeRef { page }
    }

    /// Number of entries.
    pub fn count(&self) -> usize {
        self.page.slot_count() as usize
    }

    /// True when the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Fraction of entry slots in use.
    pub fn fill_fraction(&self) -> f64 {
        self.count() as f64 / NODE_CAPACITY as f64
    }

    fn entry_at(&self, i: usize) -> (u64, PageId) {
        let off = HEADER_SIZE + i * ENTRY_SIZE;
        let b = self.page.bytes();
        let key = u64::from_le_bytes(b[off..off + 8].try_into().unwrap());
        let child = PageId(u32::from_le_bytes(b[off + 8..off + 12].try_into().unwrap()));
        (key, child)
    }

    /// All `(low_key, child)` entries in key order.
    pub fn entries(&self) -> Vec<(u64, PageId)> {
        (0..self.count()).map(|i| self.entry_at(i)).collect()
    }

    /// All child page ids in key order.
    pub fn children(&self) -> Vec<PageId> {
        (0..self.count()).map(|i| self.entry_at(i).1).collect()
    }

    fn route_index(&self, key: u64) -> Option<usize> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.entry_at(mid).0 <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Some(lo.saturating_sub(1))
    }

    /// The child to descend into for `key`.
    pub fn child_for(&self, key: u64) -> Option<PageId> {
        self.route_index(key).map(|i| self.entry_at(i).1)
    }

    /// The routing entry `(low_key, child)` for `key`.
    pub fn entry_for(&self, key: u64) -> Option<(u64, PageId)> {
        self.route_index(key).map(|i| self.entry_at(i))
    }

    /// The entry after the routing entry for `key`.
    pub fn entry_after(&self, key: u64) -> Option<(u64, PageId)> {
        let i = self.route_index(key)?;
        if i + 1 < self.count() {
            Some(self.entry_at(i + 1))
        } else {
            None
        }
    }

    /// First (smallest) entry.
    pub fn first_entry(&self) -> Option<(u64, PageId)> {
        (!self.is_empty()).then(|| self.entry_at(0))
    }

    /// Last (largest) entry.
    pub fn last_entry(&self) -> Option<(u64, PageId)> {
        let n = self.count();
        (n > 0).then(|| self.entry_at(n - 1))
    }
}

/// A typed view over an internal page.
pub struct NodeView<'a> {
    page: &'a mut Page,
}

impl<'a> NodeView<'a> {
    /// Wrap an existing internal page.
    pub fn new(page: &'a mut Page) -> NodeView<'a> {
        debug_assert_eq!(
            page.page_type(),
            Some(PageType::Internal),
            "not an internal page"
        );
        NodeView { page }
    }

    /// Format `page` as an empty internal page at `level` and wrap it.
    // protocol: page-mutation
    pub fn init(page: &'a mut Page, level: u8) -> NodeView<'a> {
        page.format(PageType::Internal, level);
        NodeView { page }
    }

    /// The underlying page.
    pub fn page(&self) -> &Page {
        self.page
    }

    /// The underlying page, mutably.
    pub fn page_mut(&mut self) -> &mut Page {
        self.page
    }

    /// Number of entries.
    pub fn count(&self) -> usize {
        self.page.slot_count() as usize
    }

    /// True when the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// True when another entry fits.
    pub fn has_room(&self) -> bool {
        self.count() < NODE_CAPACITY
    }

    /// Fraction of entry slots in use.
    pub fn fill_fraction(&self) -> f64 {
        self.count() as f64 / NODE_CAPACITY as f64
    }

    fn entry_at(&self, i: usize) -> (u64, PageId) {
        let off = HEADER_SIZE + i * ENTRY_SIZE;
        let b = self.page.bytes();
        let key = u64::from_le_bytes(b[off..off + 8].try_into().unwrap());
        let child = PageId(u32::from_le_bytes(b[off + 8..off + 12].try_into().unwrap()));
        (key, child)
    }

    fn write_entry_at(&mut self, i: usize, key: u64, child: PageId) {
        let off = HEADER_SIZE + i * ENTRY_SIZE;
        let b = self.page.bytes_mut();
        b[off..off + 8].copy_from_slice(&key.to_le_bytes());
        b[off + 8..off + 12].copy_from_slice(&child.0.to_le_bytes());
    }

    /// All `(low_key, child)` entries in key order.
    pub fn entries(&self) -> Vec<(u64, PageId)> {
        (0..self.count()).map(|i| self.entry_at(i)).collect()
    }

    /// All child page ids in key order.
    pub fn children(&self) -> Vec<PageId> {
        (0..self.count()).map(|i| self.entry_at(i).1).collect()
    }

    /// Binary-search index of the routing entry for `key` (clamped to 0).
    fn route_index(&self, key: u64) -> Option<usize> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.entry_at(mid).0 <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Some(lo.saturating_sub(1))
    }

    /// The child to descend into for `key`.
    pub fn child_for(&self, key: u64) -> Option<PageId> {
        self.route_index(key).map(|i| self.entry_at(i).1)
    }

    /// The routing entry `(low_key, child)` for `key`.
    pub fn entry_for(&self, key: u64) -> Option<(u64, PageId)> {
        self.route_index(key).map(|i| self.entry_at(i))
    }

    /// The entry after the routing entry for `key` (right neighbour).
    pub fn entry_after(&self, key: u64) -> Option<(u64, PageId)> {
        let i = self.route_index(key)?;
        if i + 1 < self.count() {
            Some(self.entry_at(i + 1))
        } else {
            None
        }
    }

    /// Entry whose low key is exactly `key`, if present.
    pub fn find_exact(&self, key: u64) -> Option<(usize, PageId)> {
        let i = self.route_index(key)?;
        let (k, c) = self.entry_at(i);
        (k == key).then_some((i, c))
    }

    /// Insert an entry keeping key order. Fails when full or on duplicate
    /// low keys.
    // protocol: page-mutation
    pub fn insert_entry(&mut self, key: u64, child: PageId) -> StorageResult<()> {
        let n = self.count();
        if n >= NODE_CAPACITY {
            return Err(StorageError::PageFull {
                page: PageId::INVALID,
                needed: ENTRY_SIZE,
                free: 0,
            });
        }
        let pos = match self.route_index(key) {
            None => 0,
            Some(i) => {
                let (k, _) = self.entry_at(i);
                if k == key {
                    return Err(StorageError::Corrupt(format!("duplicate low key {key}")));
                }
                if k < key {
                    i + 1
                } else {
                    // route_index clamps to 0 when key is below everything.
                    0
                }
            }
        };
        let start = HEADER_SIZE + pos * ENTRY_SIZE;
        let end = HEADER_SIZE + n * ENTRY_SIZE;
        self.page
            .bytes_mut()
            .copy_within(start..end, start + ENTRY_SIZE);
        self.write_entry_at(pos, key, child);
        self.page.set_slot_count((n + 1) as u16);
        self.page.set_free_ptr((end + ENTRY_SIZE) as u16);
        if self.page.low_mark() == u64::MAX || key < self.page.low_mark() {
            self.page.set_low_mark(key);
        }
        Ok(())
    }

    /// Remove the entry with exactly this low key; returns its child.
    // protocol: page-mutation
    pub fn remove_entry(&mut self, key: u64) -> Option<PageId> {
        let (i, child) = self.find_exact(key)?;
        let n = self.count();
        let start = HEADER_SIZE + i * ENTRY_SIZE;
        let end = HEADER_SIZE + n * ENTRY_SIZE;
        self.page
            .bytes_mut()
            .copy_within(start + ENTRY_SIZE..end, start);
        self.page.set_slot_count((n - 1) as u16);
        self.page.set_free_ptr((end - ENTRY_SIZE) as u16);
        Some(child)
    }

    /// Replace the child of the entry with exactly this low key.
    // protocol: page-mutation
    pub fn set_child(&mut self, key: u64, child: PageId) -> StorageResult<()> {
        match self.find_exact(key) {
            Some((i, _)) => {
                self.write_entry_at(i, key, child);
                Ok(())
            }
            None => Err(StorageError::Corrupt(format!(
                "no entry with low key {key} to repoint"
            ))),
        }
    }

    /// Replace the child pointer `old` wherever it appears (a swap updates
    /// parents by child identity, not by key). Returns the entry's low key.
    // protocol: page-mutation
    pub fn repoint_child(&mut self, old: PageId, new: PageId) -> Option<u64> {
        for i in 0..self.count() {
            let (k, c) = self.entry_at(i);
            if c == old {
                self.write_entry_at(i, k, new);
                return Some(k);
            }
        }
        None
    }

    /// First (smallest) entry.
    pub fn first_entry(&self) -> Option<(u64, PageId)> {
        (!self.is_empty()).then(|| self.entry_at(0))
    }

    /// Last (largest) entry.
    pub fn last_entry(&self) -> Option<(u64, PageId)> {
        let n = self.count();
        (n > 0).then(|| self.entry_at(n - 1))
    }

    /// Structural self-check.
    pub fn validate(&self) -> StorageResult<()> {
        let mut prev: Option<u64> = None;
        for i in 0..self.count() {
            let (k, c) = self.entry_at(i);
            if !c.is_valid() {
                return Err(StorageError::Corrupt(format!(
                    "entry {i} has invalid child"
                )));
            }
            if let Some(p) = prev {
                if k <= p {
                    return Err(StorageError::Corrupt(format!(
                        "node keys out of order: {k} after {p}"
                    )));
                }
            }
            prev = Some(k);
        }
        let expect_fp = HEADER_SIZE + self.count() * ENTRY_SIZE;
        if self.page.free_ptr() as usize != expect_fp {
            return Err(StorageError::Corrupt(format!(
                "node free pointer {} expected {expect_fp}",
                self.page.free_ptr()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn node() -> Page {
        let mut p = Page::new();
        p.format(PageType::Internal, 1);
        p
    }

    #[test]
    fn routing_picks_greatest_low_key_at_most_key() {
        let mut p = node();
        let mut v = NodeView::new(&mut p);
        v.insert_entry(10, PageId(1)).unwrap();
        v.insert_entry(20, PageId(2)).unwrap();
        v.insert_entry(30, PageId(3)).unwrap();
        assert_eq!(v.child_for(10), Some(PageId(1)));
        assert_eq!(v.child_for(15), Some(PageId(1)));
        assert_eq!(v.child_for(20), Some(PageId(2)));
        assert_eq!(v.child_for(29), Some(PageId(2)));
        assert_eq!(v.child_for(30), Some(PageId(3)));
        assert_eq!(v.child_for(u64::MAX), Some(PageId(3)));
        // Below every low key: clamp to the leftmost child.
        assert_eq!(v.child_for(5), Some(PageId(1)));
        v.validate().unwrap();
    }

    #[test]
    fn empty_node_routes_nowhere() {
        let mut p = node();
        let v = NodeView::new(&mut p);
        assert_eq!(v.child_for(1), None);
        assert!(v.is_empty());
    }

    #[test]
    fn insert_out_of_order_keeps_sorted() {
        let mut p = node();
        let mut v = NodeView::new(&mut p);
        v.insert_entry(30, PageId(3)).unwrap();
        v.insert_entry(10, PageId(1)).unwrap();
        v.insert_entry(20, PageId(2)).unwrap();
        assert_eq!(
            v.entries(),
            vec![(10, PageId(1)), (20, PageId(2)), (30, PageId(3))]
        );
        v.validate().unwrap();
    }

    #[test]
    fn duplicate_low_key_rejected() {
        let mut p = node();
        let mut v = NodeView::new(&mut p);
        v.insert_entry(10, PageId(1)).unwrap();
        assert!(v.insert_entry(10, PageId(2)).is_err());
    }

    #[test]
    fn remove_and_repoint() {
        let mut p = node();
        let mut v = NodeView::new(&mut p);
        v.insert_entry(10, PageId(1)).unwrap();
        v.insert_entry(20, PageId(2)).unwrap();
        assert_eq!(v.remove_entry(10), Some(PageId(1)));
        assert_eq!(v.remove_entry(10), None);
        assert_eq!(v.entries(), vec![(20, PageId(2))]);
        assert_eq!(v.repoint_child(PageId(2), PageId(9)), Some(20));
        assert_eq!(v.child_for(25), Some(PageId(9)));
        assert_eq!(v.repoint_child(PageId(2), PageId(9)), None);
        v.set_child(20, PageId(4)).unwrap();
        assert_eq!(v.child_for(25), Some(PageId(4)));
        assert!(v.set_child(99, PageId(4)).is_err());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut p = node();
        let mut v = NodeView::new(&mut p);
        for i in 0..NODE_CAPACITY as u64 {
            v.insert_entry(i, PageId(i as u32)).unwrap();
        }
        assert!(!v.has_room());
        assert!(v.insert_entry(9999, PageId(9)).is_err());
        assert!((v.fill_fraction() - 1.0).abs() < f64::EPSILON);
        v.validate().unwrap();
    }

    #[test]
    fn entry_neighbours() {
        let mut p = node();
        let mut v = NodeView::new(&mut p);
        v.insert_entry(10, PageId(1)).unwrap();
        v.insert_entry(20, PageId(2)).unwrap();
        assert_eq!(v.entry_for(15), Some((10, PageId(1))));
        assert_eq!(v.entry_after(15), Some((20, PageId(2))));
        assert_eq!(v.entry_after(25), None);
        assert_eq!(v.first_entry(), Some((10, PageId(1))));
        assert_eq!(v.last_entry(), Some((20, PageId(2))));
    }

    #[test]
    fn base_page_capacity_matches_paper_scale() {
        // "each base page might contain pointers to around two hundred leaf
        // pages" — our 4 KiB pages hold ~338 entries, the same order.
        // Documenting the paper scale; const-asserted at compile time.
        const { assert!(NODE_CAPACITY > 200) };
    }

    proptest! {
        #[test]
        fn prop_routing_matches_model(keys in prop::collection::btree_set(0u64..10_000, 1..100),
                                      probes in prop::collection::vec(any::<u64>(), 0..50)) {
            let mut p = node();
            let mut v = NodeView::new(&mut p);
            for (i, &k) in keys.iter().enumerate() {
                v.insert_entry(k, PageId(i as u32)).unwrap();
            }
            v.validate().unwrap();
            let sorted: Vec<u64> = keys.iter().copied().collect();
            for probe in probes {
                // Clamp to the first entry when the probe is below all keys.
                let want_idx = sorted.iter().rposition(|&k| k <= probe).unwrap_or_default();
                prop_assert_eq!(v.child_for(probe), Some(PageId(want_idx as u32)));
            }
        }
    }
}
