//! Tree-shape statistics — the quantities the reorganization improves and
//! the experiments report: leaf count, fill factor, height, disorder.

use obr_storage::PageId;

/// A snapshot of the physical shape of the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Tree height (0 = root is a leaf).
    pub height: u8,
    /// Number of leaf pages.
    pub leaf_pages: usize,
    /// Number of internal pages (all levels, including the root).
    pub internal_pages: usize,
    /// Total records in the tree.
    pub records: u64,
    /// Mean leaf fill fraction.
    pub avg_leaf_fill: f64,
    /// Leaf page ids in key order.
    pub leaves_in_key_order: Vec<PageId>,
}

impl TreeStats {
    /// Number of adjacent leaf pairs (in key order) that are **not**
    /// physically adjacent on disk — the disorder pass 2 eliminates.
    pub fn leaf_discontinuities(&self) -> usize {
        self.leaves_in_key_order
            .windows(2)
            .filter(|w| w[1].0 != w[0].0 + 1)
            .count()
    }

    /// Sum of |Δ page-id| between key-order-consecutive leaves: the seek
    /// cost of a full-range scan under our disk model.
    pub fn scan_seek_distance(&self) -> u64 {
        self.leaves_in_key_order
            .windows(2)
            .map(|w| (w[1].0 as u64).abs_diff(w[0].0 as u64))
            .sum()
    }

    /// Total pages the tree occupies.
    pub fn total_pages(&self) -> usize {
        self.leaf_pages + self.internal_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(leaves: Vec<u32>) -> TreeStats {
        TreeStats {
            height: 1,
            leaf_pages: leaves.len(),
            internal_pages: 1,
            records: 0,
            avg_leaf_fill: 0.5,
            leaves_in_key_order: leaves.into_iter().map(PageId).collect(),
        }
    }

    #[test]
    fn contiguous_leaves_have_no_discontinuities() {
        let s = stats(vec![3, 4, 5, 6]);
        assert_eq!(s.leaf_discontinuities(), 0);
        assert_eq!(s.scan_seek_distance(), 3);
    }

    #[test]
    fn scattered_leaves_are_counted() {
        let s = stats(vec![9, 2, 17, 3]);
        assert_eq!(s.leaf_discontinuities(), 3);
        assert_eq!(s.scan_seek_distance(), 7 + 15 + 14);
        assert_eq!(s.total_pages(), 5);
    }

    #[test]
    fn single_leaf_is_trivially_ordered() {
        let s = stats(vec![42]);
        assert_eq!(s.leaf_discontinuities(), 0);
        assert_eq!(s.scan_seek_distance(), 0);
    }
}
