//! A streaming range cursor: leaf-at-a-time iteration without materializing
//! the whole result set (what a real client would use for large scans).
//!
//! The cursor holds no latches between calls: each refill latches one leaf,
//! copies the qualifying records, and advances. With side pointers the next
//! leaf comes from the chain; without them the cursor re-descends using the
//! first key it has not yet returned. Concurrent structure changes are
//! tolerated the same way the paper's readers tolerate them: the cursor
//! simply re-descends and may observe records inserted or moved after it
//! started (read-committed semantics, like [`BTree::range_scan`]).

use std::collections::VecDeque;

use obr_storage::PageType;

use crate::error::BTreeResult;
use crate::leaf::LeafRef;
use crate::tree::{BTree, SidePointerMode};

/// A forward cursor over `[lo, hi]`.
pub struct RangeCursor<'t> {
    tree: &'t BTree,
    hi: u64,
    /// Next key we have not yet returned (`None` = exhausted).
    next_key: Option<u64>,
    buf: VecDeque<(u64, Vec<u8>)>,
    done: bool,
    /// Without side pointers there is no chain to follow, so the cursor
    /// iterates a snapshot of the in-order leaf list instead.
    leaf_list: Option<(Vec<obr_storage::PageId>, usize)>,
}

impl BTree {
    /// Open a streaming cursor over the inclusive key range `[lo, hi]`.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use obr_btree::{BTree, SidePointerMode};
    /// use obr_storage::{BufferPool, DiskManager, FreeSpaceMap, InMemoryDisk, Lsn};
    /// use obr_wal::{LogManager, TxnId};
    ///
    /// let disk = Arc::new(InMemoryDisk::new(256));
    /// let pool = Arc::new(BufferPool::new(disk as Arc<dyn DiskManager>, 256));
    /// let fsm = Arc::new(FreeSpaceMap::new_all_free(256));
    /// let tree = BTree::create(pool, fsm, Arc::new(LogManager::new()),
    ///                          SidePointerMode::TwoWay).unwrap();
    /// for k in 0..100u64 {
    ///     tree.insert(TxnId(1), Lsn::ZERO, k, &k.to_le_bytes()).unwrap();
    /// }
    /// let keys: Vec<u64> = tree.cursor(10, 14)
    ///     .map(|r| r.unwrap().0)
    ///     .collect();
    /// assert_eq!(keys, vec![10, 11, 12, 13, 14]);
    /// ```
    pub fn cursor(&self, lo: u64, hi: u64) -> RangeCursor<'_> {
        RangeCursor {
            tree: self,
            hi,
            next_key: Some(lo),
            buf: VecDeque::new(),
            done: lo > hi,
            leaf_list: None,
        }
    }
}

impl RangeCursor<'_> {
    fn refill(&mut self) -> BTreeResult<()> {
        if self.tree.side_mode() == SidePointerMode::None {
            return self.refill_from_leaf_list();
        }
        let Some(from) = self.next_key else {
            self.done = true;
            return Ok(());
        };
        // Latch the leaf responsible for `from`, copy its qualifying
        // records, and compute where to continue.
        let leaf_id = self.tree.leaf_for(from)?;
        let pool = self.tree.pool();
        let (records, leaf_last, right) = {
            let g = pool.fetch(leaf_id)?;
            let page = g.read();
            if page.page_type() != Some(PageType::Leaf) {
                // Raced with a structure change: retry from the same key.
                return Ok(());
            }
            let r = LeafRef::new(&page);
            (r.range(from, self.hi), r.last_key(), page.right_sibling())
        };
        self.buf.extend(records);
        // Continuation: past this leaf's largest key (even if it was out of
        // range, we are finished then).
        match leaf_last {
            Some(last) if last >= self.hi => {
                self.next_key = None;
            }
            _ => {
                // Advance to the next leaf via the chain.
                let next = if right.is_valid() {
                    let g = pool.fetch(right)?;
                    let page = g.read();
                    if page.page_type() == Some(PageType::Leaf) {
                        LeafRef::new(&page).first_key()
                    } else {
                        leaf_last.map(|l| l.saturating_add(1))
                    }
                } else {
                    None // rightmost leaf: done
                };
                // Continue only with a key that makes progress and is
                // still inside the range.
                self.next_key = next.filter(|&n| n > from && n <= self.hi);
            }
        }
        if self.next_key.is_none() && self.buf.is_empty() {
            self.done = true;
        }
        Ok(())
    }

    /// No-chain refill: walk a snapshot of the in-order leaf list.
    fn refill_from_leaf_list(&mut self) -> BTreeResult<()> {
        let Some(from) = self.next_key else {
            self.done = true;
            return Ok(());
        };
        if self.leaf_list.is_none() {
            self.leaf_list = Some((self.tree.leaves_in_key_order()?, 0));
        }
        let (leaves, pos) = self.leaf_list.as_mut().expect("just set");
        let pool = self.tree.pool();
        while *pos < leaves.len() && self.buf.is_empty() {
            let leaf = leaves[*pos];
            *pos += 1;
            let g = pool.fetch(leaf)?;
            let page = g.read();
            if page.page_type() != Some(PageType::Leaf) {
                continue; // deallocated since the snapshot
            }
            let r = LeafRef::new(&page);
            if r.first_key().map(|k| k > self.hi).unwrap_or(false) {
                *pos = leaves.len(); // past the range: stop
                break;
            }
            self.buf.extend(r.range(from, self.hi));
        }
        if *pos >= leaves.len() {
            self.next_key = None;
        }
        if self.buf.is_empty() && self.next_key.is_none() {
            self.done = true;
        }
        Ok(())
    }
}

impl Iterator for RangeCursor<'_> {
    type Item = BTreeResult<(u64, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(rec) = self.buf.pop_front() {
                return Some(Ok(rec));
            }
            if self.done || self.next_key.is_none() {
                return None;
            }
            if let Err(e) = self.refill() {
                self.done = true;
                return Some(Err(e));
            }
            if self.buf.is_empty() && self.next_key.is_none() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SidePointerMode;
    use obr_storage::{BufferPool, DiskManager, FreeSpaceMap, InMemoryDisk, Lsn};
    use obr_wal::{LogManager, TxnId};
    use std::sync::Arc;

    fn tree(side: SidePointerMode) -> BTree {
        let disk = Arc::new(InMemoryDisk::new(2048));
        let pool = Arc::new(BufferPool::new(disk as Arc<dyn DiskManager>, 2048));
        let fsm = Arc::new(FreeSpaceMap::new_all_free(2048));
        let log = Arc::new(LogManager::new());
        let t = BTree::create(pool, fsm, log, side).unwrap();
        for k in 0..1000u64 {
            t.insert(TxnId(1), Lsn::ZERO, k * 3, &k.to_le_bytes())
                .unwrap();
        }
        t
    }

    #[test]
    fn cursor_matches_range_scan() {
        for side in [
            SidePointerMode::TwoWay,
            SidePointerMode::OneWay,
            SidePointerMode::None,
        ] {
            let t = tree(side);
            for (lo, hi) in [(0, 2997), (100, 200), (1, 1), (2995, 10_000), (500, 499)] {
                let via_cursor: Vec<(u64, Vec<u8>)> =
                    t.cursor(lo, hi).collect::<BTreeResult<_>>().unwrap();
                let via_scan = t.range_scan(lo, hi).unwrap();
                assert_eq!(via_cursor, via_scan, "side={side:?} range=({lo},{hi})");
            }
        }
    }

    #[test]
    fn cursor_streams_lazily() {
        let t = tree(SidePointerMode::TwoWay);
        let mut c = t.cursor(0, u64::MAX);
        // Take a handful without draining.
        for want in [0u64, 3, 6, 9] {
            assert_eq!(c.next().unwrap().unwrap().0, want);
        }
    }

    #[test]
    fn cursor_survives_concurrent_inserts() {
        let t = Arc::new(tree(SidePointerMode::TwoWay));
        let t2 = Arc::clone(&t);
        std::thread::scope(|s| {
            s.spawn(move || {
                for k in 0..500u64 {
                    let key = 10_000 + k;
                    t2.insert(TxnId(2), Lsn::ZERO, key, &[1]).unwrap();
                }
            });
            // Stream the original range while the writer splits leaves
            // above it; every original record must be seen exactly once.
            let got: Vec<u64> = t.cursor(0, 2997).map(|r| r.unwrap().0).collect();
            assert_eq!(got, (0..1000u64).map(|k| k * 3).collect::<Vec<_>>());
        });
    }

    #[test]
    fn empty_range_yields_nothing() {
        let t = tree(SidePointerMode::TwoWay);
        assert_eq!(t.cursor(1, 2).count(), 0); // between records
        assert_eq!(t.cursor(5000, 4000).count(), 0); // inverted
    }
}
