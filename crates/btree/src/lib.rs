//! The primary B+-tree the reorganizer operates on.
//!
//! This is the tree variant the paper assumes (§2): an internal node with
//! `n` keys has `n` children (each entry is a *low key* plus a child
//! pointer); leaf pages contain the data records, because the tree is the
//! primary index; deletes follow the **free-at-empty** policy of \[JS93\] —
//! sparse nodes are never consolidated, only completely empty pages are
//! deallocated; and leaves optionally carry side pointers (§4.3).
//!
//! Concurrency split: this crate does *physical* synchronization (page
//! latches plus a single structure-modification mutex); the *logical* lock
//! protocols of §4.1 (lock-coupling, RX fallback, safe-node restarts) are
//! implemented by `obr-txn` on top. Structure modifications (splits,
//! free-at-empty deallocations, root growth) are logged as atomic [`Smo`]
//! records carrying full page images; record inserts/deletes are logged
//! logically with per-transaction prev-LSN chains.
//!
//! [`Smo`]: obr_wal::LogRecord::Smo

pub mod builder;
pub mod cursor;
pub mod error;
pub mod leaf;
pub mod meta;
pub mod node;
pub mod stats;
pub mod tree;

pub use builder::UpperBuilder;
pub use cursor::RangeCursor;
pub use error::{BTreeError, BTreeResult};
pub use leaf::{LeafRef, LeafView};
pub use meta::{MetaRef, MetaView};
pub use node::{NodeRef, NodeView};
pub use stats::TreeStats;
pub use tree::{BTree, SidePointerMode, SmoObserver};
