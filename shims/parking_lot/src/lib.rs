//! In-repo shim for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API slice it actually uses: [`Mutex`],
//! [`RwLock`], and [`Condvar`] with `parking_lot`'s no-poisoning
//! semantics (a panicked holder simply releases the lock; subsequent
//! `lock()` calls succeed and see the last written state).

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with this shim's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard already taken");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_mutex_stays_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
