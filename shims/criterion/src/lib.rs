//! In-repo shim for the `criterion` crate (the build environment is
//! offline). Provides the API slice the bench targets use — `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `black_box`, `criterion_group!`, `criterion_main!` — with a simple
//! fixed-budget timing loop instead of Criterion's statistical engine.
//! Each benchmark reports a mean ns/iter on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-export of `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Wall-clock budget per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("OBR_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Accepted for compatibility with Criterion's generated harness.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.budget, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.budget, &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, budget: Duration, f: &mut F) {
    let mut b = Bencher {
        budget,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters > 0 {
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("bench: {id:<48} {ns:>14.1} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench: {id:<48} (no iterations)");
    }
}

/// Passed to each benchmark closure; drives the timing loop.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Mirror of `criterion::criterion_group!` (plain-list form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("shim/self-test", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        c.benchmark_group("g").bench_function("case", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
