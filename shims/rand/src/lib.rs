//! In-repo shim for the `rand` crate (the build environment is offline).
//!
//! Provides [`rngs::StdRng`] (a SplitMix64/xoshiro-style generator — *not*
//! the cryptographic ChaCha generator real `rand` uses; fine for workload
//! generation and tests, never for security), [`SeedableRng`], and the
//! [`Rng`] methods the workspace calls: `gen_range`, `gen_bool`, `gen`,
//! `next_u64`.

use std::ops::{Range, RangeInclusive};

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draw uniformly from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128).wrapping_add(draw as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_half_open(rng, lo, hi.wrapping_add(1))
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(rng, lo, hi)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Core entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::draw(self) < p
    }

    /// Uniform draw of a whole value.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: `xoshiro256**` seeded via
    /// SplitMix64, matching the reference construction from Blackman &
    /// Vigna. Deterministic for a given seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "biased coin: {heads}");
    }
}
