//! Collection strategies: `prop::collection::{vec, btree_set}`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size bound for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` aiming for a size drawn from `size`
/// (duplicates may make the set smaller, as in real proptest).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Bounded attempts: a narrow element space may not fill `n` slots.
        for _ in 0..n.saturating_mul(4) {
            if out.len() >= n {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}
