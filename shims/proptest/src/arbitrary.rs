//! The [`Arbitrary`] trait backing [`crate::any`].

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "whole value space" strategy.
pub trait Arbitrary {
    /// Draw a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`crate::any`].
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any valid scalar value.
        if rng.below(4) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
        } else {
            (b' ' + (rng.below(95)) as u8) as char
        }
    }
}
