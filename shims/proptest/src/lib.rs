//! In-repo shim for the `proptest` crate (the build environment is offline).
//!
//! A miniature property-testing engine with the API slice this workspace
//! uses: the [`Strategy`] trait with `prop_map`/`boxed`, [`any`],
//! range/tuple strategies, `prop::collection::{vec, btree_set}`,
//! `prop::sample::Index`, weighted [`prop_oneof!`], and the [`proptest!`]
//! test macro with `#![proptest_config(..)]`.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its deterministic case index
//!   (re-run with the same binary to reproduce); it is not minimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from the test's
//!   module path + case index, so failures reproduce across runs.
//! - Default case count is 64 (override per-block with `ProptestConfig`
//!   or globally with the `PROPTEST_CASES` env var).

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

/// Collection strategies (`prop::collection`).
pub mod collection;

/// Sampling helpers (`prop::sample`).
pub mod sample;

pub use strategy::{Just, Strategy};

/// Per-block configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases, other settings default.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Generate a value of `T` from its full value space.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any::new()
}

/// Everything a proptest-style test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop` (module-path access to
    /// `prop::collection` and `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in any::<u64>(), v in prop::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(v.len() < 16 || x > 0 || true);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$attr:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let __guard =
                        $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                    let ( $($arg,)+ ) = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+
                    );
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        panic!("property failed: {e}");
                    }
                    __guard.disarm();
                }
            }
        )*
    };
}

/// Choose between strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Assert inside a property (this shim panics, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Toy {
        A(u64),
        B(Vec<u8>),
        C,
    }

    fn toy() -> impl Strategy<Value = Toy> {
        prop_oneof![
            3 => any::<u64>().prop_map(Toy::A),
            2 => prop::collection::vec(any::<u8>(), 0..8).prop_map(Toy::B),
            1 => Just(Toy::C),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0u32..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn vec_len_in_bounds(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn btree_set_respects_range(s in prop::collection::btree_set(0u32..64, 0..20)) {
            prop_assert!(s.len() < 20);
            prop_assert!(s.iter().all(|&v| v < 64));
        }

        #[test]
        fn tuples_and_oneof(t in (any::<bool>(), 0u64..64), v in toy()) {
            prop_assert!(t.1 < 64);
            match v {
                Toy::B(b) => prop_assert!(b.len() < 8),
                Toy::A(_) | Toy::C => {}
            }
        }

        #[test]
        fn index_in_len(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("x", 3);
        let mut b = crate::test_runner::TestRng::for_case("x", 3);
        let s = crate::collection::vec(crate::any::<u64>(), 0..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
