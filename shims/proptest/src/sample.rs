//! Sampling helpers: `prop::sample::Index`.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An index into a collection whose length is only known at use time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Resolve against a collection of length `len` (must be nonzero).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.raw % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index {
            raw: rng.next_u64(),
        }
    }
}
