//! Deterministic RNG and failure reporting for the shim's test loop.

/// Deterministic per-case RNG (xoshiro256** seeded from the test name and
/// case index via FNV-1a + SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, bound)` for up-to-128-bit bounds.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A property-body failure (mirror of `proptest::test_runner::TestCaseError`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Fail the current case with `msg`.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }

    /// Alias of [`TestCaseError::fail`] kept for API compatibility
    /// (this shim retries nothing, so rejecting equals failing).
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        Self::fail(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Prints the failing case index if the property body panics.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arm a guard for one case of `name`.
    pub fn new(name: &'static str, case: u32) -> CaseGuard {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    /// The case finished cleanly; do not report on drop.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest-shim: property '{}' failed at case index {} \
                 (deterministic; re-run this test to reproduce)",
                self.name, self.case
            );
        }
    }
}
