//! The [`Strategy`] trait and combinators (map, union, ranges, tuples).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns true (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 draws in a row", self.whence);
    }
}

/// Weighted choice between same-valued strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: all weights are zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = rng.below_u128(span);
                (self.start as i128).wrapping_add(draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let draw = rng.below_u128(span);
                (lo as i128).wrapping_add(draw as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
